/// Golden pins for the full-scale SAL reproduction (bench/sal_full): the
/// seed-42 generator fingerprints (row-sample digest + per-column code
/// histograms) and the cold-publication digest of the paper's main
/// workload, at smoke scale by default so ctest catches bench regressions
/// without paying the 700k run. Set PGPUB_SAL_ROWS=700000 to check the
/// full-scale pins (the generator check stays cheap; the publication adds
/// a few seconds). The pinned values were produced by bench/sal_full and
/// must stay equal to what it prints — both sides share
/// bench/sal_digest.h, so a drift in either the generator or the
/// publishing pipeline trips these tests.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>

#include "bench/sal_digest.h"
#include "core/columnar/phase2.h"
#include "core/robust_publisher.h"
#include "datagen/sal.h"

namespace pgpub {
namespace {

struct SalPins {
  uint64_t row_sample_digest = 0;
  uint64_t histogram_digest = 0;
  uint64_t publication_digest = 0;
};

/// Known (num_rows -> fingerprints) at seed 42. 20000 is the smoke scale
/// CI runs (and the committed bench/baselines/BENCH_sal_full.json);
/// 700000 is the paper's Section VII scale.
const std::map<size_t, SalPins>& Pins() {
  static const std::map<size_t, SalPins> pins = {
      {20000, {0xbcd6e0db66e8d302ull, 0xf43d6ffb118a9fefull,
               0x8e94fe3d1738f503ull}},
      {700000, {0x363bd306b69fcb47ull, 0xcca1cc8f35bc90eeull,
                0x393258b8d0101795ull}},
  };
  return pins;
}

size_t PinnedRows() {
  if (const char* env = std::getenv("PGPUB_SAL_ROWS");
      env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 20000;
}

CensusDataset GenerateAt(size_t rows, int threads = 0) {
  SalOptions options;
  options.num_rows = rows;
  options.seed = 42;
  options.num_threads = threads;
  return GenerateSal(options).ValueOrDie();
}

TEST(SalGoldenTest, GeneratorFingerprintsPinned) {
  const size_t rows = PinnedRows();
  const auto pin = Pins().find(rows);
  if (pin == Pins().end()) {
    GTEST_SKIP() << "no pinned fingerprints for PGPUB_SAL_ROWS=" << rows;
  }
  const CensusDataset sal = GenerateAt(rows);
  EXPECT_EQ(bench::Hex(bench::RowSampleDigest(sal.table)),
            bench::Hex(pin->second.row_sample_digest));
  EXPECT_EQ(bench::Hex(bench::HistogramDigest(sal.table)),
            bench::Hex(pin->second.histogram_digest));
}

TEST(SalGoldenTest, GeneratorIsAPureFunctionOfRowCountAndThreads) {
  // Row i is Rng::ForStream(seed, i): a shorter table is a strict prefix
  // of a longer one, and the thread count never changes a row. This is
  // what makes the smoke-scale pins above evidence about the full-scale
  // table: the 700k table extends the 20k table, it does not replace it.
  const CensusDataset small = GenerateAt(2000, 1);
  const CensusDataset large = GenerateAt(4000, 3);
  ASSERT_EQ(small.table.num_rows(), 2000u);
  ASSERT_EQ(large.table.num_rows(), 4000u);
  for (size_t r = 0; r < small.table.num_rows(); ++r) {
    for (int a = 0; a < small.table.num_attributes(); ++a) {
      ASSERT_EQ(small.table.value(r, a), large.table.value(r, a))
          << "row " << r << " attr " << a;
    }
  }
}

TEST(SalGoldenTest, ColdPublicationDigestPinned) {
  const size_t rows = PinnedRows();
  const auto pin = Pins().find(rows);
  if (pin == Pins().end()) {
    GTEST_SKIP() << "no pinned digest for PGPUB_SAL_ROWS=" << rows;
  }
  CensusDataset sal = GenerateAt(rows);
  const std::vector<const Taxonomy*> taxonomies = sal.TaxonomyPointers();

  PgOptions options = bench::SalColdPublishOptions(1);
  options.phase2_impl = columnar::Phase2Impl::kColumnar;
  const PublishedTable columnar_release =
      RobustPublisher(options).Publish(sal.table, taxonomies).ValueOrDie();
  EXPECT_EQ(bench::Hex(bench::PublicationDigest(columnar_release)),
            bench::Hex(pin->second.publication_digest));

  // At smoke scale, also hold the row-wise oracle to the same pin (the
  // full-scale oracle leg lives in bench/sal_full, PGPUB_SAL_ORACLE=1).
  if (rows <= 100000) {
    options.phase2_impl = columnar::Phase2Impl::kRowwise;
    const PublishedTable rowwise_release =
        RobustPublisher(options).Publish(sal.table, taxonomies).ValueOrDie();
    EXPECT_EQ(bench::Hex(bench::PublicationDigest(rowwise_release)),
              bench::Hex(pin->second.publication_digest));
  }
}

}  // namespace
}  // namespace pgpub
