#include <gtest/gtest.h>

#include "diversity/ldiversity.h"
#include "diversity/tcloseness.h"

namespace pgpub {
namespace {

// ----------------------------------------------------- DistinctLDiversity

TEST(DistinctLDiversityTest, CountsDistinctValues) {
  DistinctLDiversity l2(2);
  EXPECT_TRUE(l2.Satisfied({3, 1, 0}));
  EXPECT_FALSE(l2.Satisfied({4, 0, 0}));
  EXPECT_FALSE(l2.Satisfied({0, 0, 0}));
  DistinctLDiversity l1(1);
  EXPECT_TRUE(l1.Satisfied({1, 0}));
}

TEST(DistinctLDiversityTest, Name) {
  EXPECT_EQ(DistinctLDiversity(3).name(), "distinct 3-diversity");
}

// ------------------------------------------------------------ CLDiversity

TEST(CLDiversityTest, PaperFigure1Example) {
  // Figure 1: group of 11 tuples, l' = 6 distinct values with counts
  // 3,2,2,2,1,1 — satisfies (1/2, 3)-diversity: 3 <= 0.5*(2+2+1+1).
  CLDiversity half3(0.5, 3);
  EXPECT_TRUE(half3.Satisfied({3, 2, 2, 2, 1, 1}));
}

TEST(CLDiversityTest, ViolatedWhenTopValueTooFrequent) {
  CLDiversity half3(0.5, 3);
  // counts 5,2,2,1,1: tail from l=3 is 2+1+1=4; 5 > 0.5*4.
  EXPECT_FALSE(half3.Satisfied({5, 2, 2, 1, 1}));
}

TEST(CLDiversityTest, RequiresAtLeastLDistinct) {
  CLDiversity c(2.0, 3);
  EXPECT_FALSE(c.Satisfied({4, 4, 0}));  // only 2 distinct
}

TEST(CLDiversityTest, HistogramOrderIrrelevant) {
  CLDiversity half3(0.5, 3);
  EXPECT_TRUE(half3.Satisfied({1, 3, 2, 1, 2, 2}));
  EXPECT_TRUE(half3.Satisfied({2, 1, 2, 3, 1, 2}));
}

TEST(CLDiversityTest, CeilingAndAssumedPrior) {
  CLDiversity half3(0.5, 3);
  EXPECT_NEAR(half3.PosteriorCeiling(), 1.0 / 3.0, 1e-12);
  // Equation 2 with |U^s| = 100, l = 3: 1/99.
  EXPECT_NEAR(half3.AssumedPrior(100), 1.0 / 99.0, 1e-12);
}

TEST(CLDiversityTest, PaperSection3Example) {
  // The adversary knows o1 lacks HIV; the group of Figure 1 has 3
  // pneumonia among 9 non-HIV tuples: posterior 1/3 = c/(c+1) ceiling.
  CLDiversity half3(0.5, 3);
  const double posterior = 3.0 / 9.0;
  EXPECT_LE(posterior, half3.PosteriorCeiling() + 1e-12);
}

// ------------------------------------------------------ EntropyLDiversity

TEST(EntropyLDiversityTest, UniformGroupHasMaxEntropy) {
  EntropyLDiversity e4(4.0);
  EXPECT_TRUE(e4.Satisfied({2, 2, 2, 2}));
  EXPECT_FALSE(e4.Satisfied({8, 1, 1, 1}));
}

TEST(EntropyLDiversityTest, BoundaryExactlyLogL) {
  EntropyLDiversity e2(2.0);
  EXPECT_TRUE(e2.Satisfied({5, 5}));
  EXPECT_FALSE(e2.Satisfied({9, 1}));
}

// ------------------------------------------------------------- Lemma 1

TEST(Lemma1Test, PriorFloorMatchesPaperNumbers) {
  // Section III-A example: u = 6, l = 3, |U^s| = 100 -> 5/99.
  EXPECT_NEAR(Lemma1PriorFloor(6, 3, 100), 5.0 / 99.0, 1e-12);
}

TEST(Lemma1Test, FloorIsSmallForLargeDomains) {
  EXPECT_LT(Lemma1PriorFloor(4, 2, 1000), 0.005);
}

TEST(MinDistinctSensitiveTest, ComputesGroupMinimum) {
  Schema schema;
  schema.AddAttribute(
      {"q", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"s", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(0, 1),
                                          AttributeDomain::Numeric(0, 3)};
  // Group q=0 has sensitive {0,1,2}; group q=1 has {3,3}.
  Table t = Table::Create(schema, domains,
                          {{0, 0, 0, 1, 1}, {0, 1, 2, 3, 3}})
                .ValueOrDie();
  GlobalRecoding rec = GlobalRecoding::AllIdentity(t, {0});
  QiGroups g = ComputeQiGroups(t, rec);
  EXPECT_EQ(MinDistinctSensitive(t, g, 1), 1);
}

// ------------------------------------------------------------ TCloseness

TEST(TClosenessTest, EmdOrderedMatchesManual) {
  // a = (1,0,0), b = (0,0,1) over 3 ordered values: EMD = (1+1)/2 = 1.
  EXPECT_NEAR(TCloseness::Emd({1, 0, 0}, {0, 0, 1},
                              TCloseness::Ground::kOrdered),
              1.0, 1e-12);
  // Adjacent shift: (1,0) -> (0,1): EMD = 1/(2-1) * 1 = 1.
  EXPECT_NEAR(TCloseness::Emd({1, 0}, {0, 1},
                              TCloseness::Ground::kOrdered),
              1.0, 1e-12);
  // Same distribution: 0.
  EXPECT_NEAR(TCloseness::Emd({2, 2}, {5, 5},
                              TCloseness::Ground::kOrdered),
              0.0, 1e-12);
}

TEST(TClosenessTest, EmdEqualGroundIsTotalVariation) {
  EXPECT_NEAR(TCloseness::Emd({1, 0, 0}, {0, 0, 1},
                              TCloseness::Ground::kEqual),
              1.0, 1e-12);
  EXPECT_NEAR(TCloseness::Emd({1, 1, 0}, {0, 1, 1},
                              TCloseness::Ground::kEqual),
              0.5, 1e-12);
}

TEST(TClosenessTest, EmdSymmetry) {
  std::vector<int64_t> a = {3, 1, 4, 1}, b = {2, 2, 2, 4};
  for (auto ground :
       {TCloseness::Ground::kOrdered, TCloseness::Ground::kEqual}) {
    EXPECT_NEAR(TCloseness::Emd(a, b, ground), TCloseness::Emd(b, a, ground),
                1e-12);
  }
}

TEST(TClosenessTest, SatisfiedNearGlobal) {
  std::vector<int64_t> global = {50, 30, 20};
  TCloseness tc(0.1, global, TCloseness::Ground::kOrdered);
  EXPECT_TRUE(tc.Satisfied({5, 3, 2}));          // identical shape
  EXPECT_FALSE(tc.Satisfied({10, 0, 0}));        // skewed to one end
  EXPECT_TRUE(tc.Satisfied({0, 0, 0}));          // empty group: vacuous
  EXPECT_EQ(tc.name(), "0.1-closeness");
}

}  // namespace
}  // namespace pgpub
