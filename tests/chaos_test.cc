#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/failpoint.h"
#include "core/robust_publisher.h"
#include "core/verify.h"
#include "datagen/clinic.h"
#include "engine/publication_engine.h"
#include "hierarchy/recoding.h"
#include "hierarchy/recoding_io.h"
#include "hierarchy/taxonomy_io.h"
#include "obs/log.h"
#include "republish/minvariance.h"
#include "server/server_core.h"
#include "server/tenant_registry.h"
#include "table/csv_io.h"

namespace pgpub {
namespace {

// The registry is process-global; every test must leave it disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisableAll(); }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
  FailpointRegistry& reg() { return FailpointRegistry::Global(); }
};

// ------------------------------------------------------- registry semantics

TEST_F(FailpointTest, UnknownNameIsRejected) {
  Status st = reg().Enable("no.such.point", "always");
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_FALSE(reg().AnyEnabled());
}

TEST_F(FailpointTest, RegisterAllowsAdHocPoints) {
  reg().Register("test.adhoc");
  ASSERT_TRUE(reg().Enable("test.adhoc", "always").ok());
  EXPECT_TRUE(reg().ShouldFail("test.adhoc"));
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  const char* bad[] = {"sometimes", "every(0)",  "every(x)", "every()",
                       "times(0)",  "prob(1.5)", "prob(-1)", "prob(0.5,x)",
                       ""};
  for (const char* spec : bad) {
    EXPECT_TRUE(reg()
                    .Enable(failpoints::kPublishPerturb, spec)
                    .IsInvalidArgument())
        << "spec accepted: " << spec;
  }
  EXPECT_FALSE(reg().AnyEnabled());
}

TEST_F(FailpointTest, AlwaysAndOffModes) {
  EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishPerturb));
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "always").ok());
  EXPECT_TRUE(reg().AnyEnabled());
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishPerturb));
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "off").ok());
  EXPECT_FALSE(reg().AnyEnabled());
  EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishPerturb));
}

TEST_F(FailpointTest, FiringEmitsStructuredFailpointHitEvent) {
  obs::ScopedLogCapture capture(obs::LogLevel::kWarn);
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "always").ok());
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishPerturb));
  const auto events = capture.sink().EventsNamed("failpoint_hit");
  ASSERT_EQ(events.size(), 1u);
  const obs::JsonValue* point = events[0].FindField("point");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->AsString().ValueOrDie(), failpoints::kPublishPerturb);
  const obs::JsonValue* phase = events[0].FindField("phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->AsString().ValueOrDie(), "perturb");

  // A check that does not fire stays silent.
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "off").ok());
  EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishPerturb));
  EXPECT_EQ(capture.sink().EventsNamed("failpoint_hit").size(), 1u);
}

TEST_F(FailpointTest, EveryNthFiresOnMultiples) {
  ASSERT_TRUE(reg().Enable(failpoints::kPublishSample, "every(3)").ok());
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(reg().ShouldFail(failpoints::kPublishSample));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
  EXPECT_EQ(reg().HitCount(failpoints::kPublishSample), 9u);
  EXPECT_EQ(reg().TriggerCount(failpoints::kPublishSample), 3u);
}

TEST_F(FailpointTest, TimesNFiresThenStops) {
  ASSERT_TRUE(reg().Enable(failpoints::kPublishAudit, "times(2)").ok());
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishAudit));
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishAudit));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishAudit));
  }
  EXPECT_EQ(reg().TriggerCount(failpoints::kPublishAudit), 2u);
}

TEST_F(FailpointTest, ProbZeroAndOneAreDegenerate) {
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "prob(0)").ok());
  ASSERT_TRUE(reg().Enable(failpoints::kPublishSample, "prob(1)").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishPerturb));
    EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishSample));
  }
}

TEST_F(FailpointTest, ProbStreamIsDeterministicPerSeed) {
  auto draw = [&](const std::string& spec) {
    reg().DisableAll();
    EXPECT_TRUE(reg().Enable(failpoints::kPublishPerturb, spec).ok());
    std::vector<bool> out;
    for (int i = 0; i < 32; ++i) {
      out.push_back(reg().ShouldFail(failpoints::kPublishPerturb));
    }
    return out;
  };
  std::vector<bool> a = draw("prob(0.5,42)");
  std::vector<bool> b = draw("prob(0.5,42)");
  std::vector<bool> c = draw("prob(0.5,43)");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  int fires = 0;
  for (bool f : a) fires += f;
  EXPECT_GT(fires, 4);  // ~16 expected; bounds are loose but deterministic
  EXPECT_LT(fires, 28);
}

TEST_F(FailpointTest, EnableFromSpecParsesLists) {
  ASSERT_TRUE(reg()
                  .EnableFromSpec(" publish.perturb = always ; "
                                  "publish.sample=every(2);;")
                  .ok());
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishPerturb));
  EXPECT_FALSE(reg().ShouldFail(failpoints::kPublishSample));
  EXPECT_TRUE(reg().ShouldFail(failpoints::kPublishSample));

  EXPECT_TRUE(reg().EnableFromSpec("missing-equals").IsInvalidArgument());
  EXPECT_TRUE(reg().EnableFromSpec("no.such=always").IsInvalidArgument());
}

TEST_F(FailpointTest, KnownNamesCoverTheCanonicalList) {
  std::vector<std::string> names = reg().KnownNames();
  for (const char* name : failpoints::kAll) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "missing canonical failpoint " << name;
  }
}

TEST_F(FailpointTest, MacroReturnsInternalStatus) {
  auto site = []() -> Status {
    PGPUB_FAILPOINT(failpoints::kPublishAssemble);
    return Status::OK();
  };
  EXPECT_TRUE(site().ok());
  ASSERT_TRUE(reg().Enable(failpoints::kPublishAssemble, "always").ok());
  Status st = site();
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find(failpoints::kPublishAssemble),
            std::string::npos);
}

// ------------------------------------------------------------- chaos sweep

/// Drives every instrumented subsystem with valid inputs. Each canonical
/// failpoint lies on exactly one of these paths, so arming it must turn
/// the corresponding operation into a non-OK Status — and disarming it
/// must make the same operation succeed again.
class ChaosSweepTest : public FailpointTest {
 protected:
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  void SetUp() override {
    FailpointTest::SetUp();
    csv_path_ = TempPath("pgpub_chaos.csv");
    {
      std::ofstream out(csv_path_);
      out << "a,b\n1,2\n3,4\n";
    }
    tax_path_ = TempPath("pgpub_chaos.tax");
    ASSERT_TRUE(SaveTaxonomy(Taxonomy::Binary(8, "root"), tax_path_).ok());
    rec_path_ = TempPath("pgpub_chaos.rec");
    GlobalRecoding recoding;
    recoding.qi_attrs = {0};
    recoding.per_attr = {AttributeRecoding::Identity(4)};
    ASSERT_TRUE(SaveRecoding(recoding, rec_path_).ok());
    clinic_ = GenerateClinic(500, 7).ValueOrDie();
  }

  void TearDown() override {
    std::remove(csv_path_.c_str());
    std::remove(tax_path_.c_str());
    std::remove(rec_path_.c_str());
    FailpointTest::TearDown();
  }

  /// Runs the operation that traverses failpoint `name`; returns its
  /// Status. With nothing armed every driver must return OK.
  Status Drive(const std::string& name) {
    if (name == failpoints::kCsvReadFile) {
      return Csv::ReadFile(csv_path_).status();
    }
    if (name == failpoints::kTableLoadCsv) {
      Schema schema({{"a", AttributeType::kNumeric, AttributeRole::kRegular},
                     {"b", AttributeType::kNumeric, AttributeRole::kRegular}});
      return LoadCsv(csv_path_, schema).status();
    }
    if (name == failpoints::kTaxonomyLoad) {
      return LoadTaxonomy(tax_path_).status();
    }
    if (name == failpoints::kRecodingLoad) {
      return LoadRecoding(rec_path_).status();
    }
    if (name == failpoints::kRepublishNext) {
      MInvariantRepublisher republisher(2, 40, 11);
      return republisher
          .PublishNext({{1, 0}, {2, 1}, {3, 2}, {4, 3}})
          .status();
    }
    if (name == failpoints::kEngineCacheRecheck) {
      // The failpoint sits on the recoding-cache *hit* path, so serve the
      // same lattice twice: Incognito ignores the perturbed labels, which
      // makes the second request (different seed) a guaranteed hit.
      engine::EngineOptions engine_options;
      engine_options.robust.max_attempts = 1;
      engine_options.robust.allow_generalizer_fallback = false;
      auto eng = engine::PublicationEngine::Create(
          Table(clinic_.table),
          std::vector<Taxonomy>(clinic_.taxonomies), engine_options);
      if (!eng.ok()) return eng.status();
      engine::PublishRequest request;
      request.options.k = 5;
      request.options.p = 0.4;
      request.options.generalizer = PgOptions::Generalizer::kIncognito;
      request.options.seed = 1;
      RETURN_IF_ERROR((*eng)->Publish(request).status());
      request.options.seed = 2;
      return (*eng)->Publish(request).status();
    }
    if (name == failpoints::kServerAdmit ||
        name == failpoints::kServerQueueCorrupt) {
      server::TenantRegistry registry(nullptr);
      server::TenantOptions tenant_options;
      tenant_options.engine.robust.max_attempts = 1;
      tenant_options.engine.robust.allow_generalizer_fallback = false;
      RETURN_IF_ERROR(registry.AddTenant(
          "t", Table(clinic_.table),
          std::vector<Taxonomy>(clinic_.taxonomies), tenant_options));
      server::ServerCore core(&registry, server::ServerOptions{});
      RETURN_IF_ERROR(core.Start());
      struct Waiter {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        Status status;
      };
      auto waiter = std::make_shared<Waiter>();
      server::ServerRequest request;
      request.tenant = "t";
      request.stream_id = 1;
      request.publish.options.k = 5;
      request.publish.options.p = 0.4;
      Status admitted = core.Submit(
          std::move(request), [waiter](server::ServerResponse response) {
            std::lock_guard<std::mutex> lock(waiter->mu);
            waiter->status = std::move(response.status);
            waiter->done = true;
            waiter->cv.notify_one();
          });
      if (!admitted.ok()) {
        core.Shutdown();
        return admitted;  // kServerAdmit rejects synchronously.
      }
      {
        std::unique_lock<std::mutex> lock(waiter->mu);
        waiter->cv.wait(lock, [&] { return waiter->done; });
      }
      core.Shutdown();
      return waiter->status;
    }
    // Everything else sits on the publish pipeline. One attempt, no
    // fallback: the armed failpoint must surface, not be retried around.
    PgOptions options;
    options.k = 5;
    options.p = 0.4;
    options.seed = 1234;
    options.generalizer = name == failpoints::kPublishGeneralizeIncognito
                              ? PgOptions::Generalizer::kIncognito
                              : PgOptions::Generalizer::kTds;
    RobustPublishOptions policy;
    policy.max_attempts = 1;
    policy.allow_generalizer_fallback = false;
    RobustPublisher publisher(options, policy);
    return publisher.Publish(clinic_.table, clinic_.TaxonomyPointers())
        .status();
  }

  std::string csv_path_, tax_path_, rec_path_;
  CensusDataset clinic_;
};

TEST_F(ChaosSweepTest, AllDriversSucceedWhenDisarmed) {
  for (const char* name : failpoints::kAll) {
    Status st = Drive(name);
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
  }
}

TEST_F(ChaosSweepTest, EveryFailpointFailsItsOperationAndRecovers) {
  for (const char* name : failpoints::kAll) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(reg().Enable(name, "always").ok());
    Status st = Drive(name);
    EXPECT_FALSE(st.ok());
    // The injected fault must surface as a well-formed error naming the
    // failpoint, never as an abort or a silently wrong result.
    EXPECT_NE(st.message().find(name), std::string::npos) << st.ToString();
    EXPECT_GE(reg().TriggerCount(name), 1u);
    reg().DisableAll();
    Status recovered = Drive(name);
    EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  }
}

TEST_F(ChaosSweepTest, ProbabilisticSweepNeverReleasesUnauditedTable) {
  // Arm the whole publish path with coin-flip faults. Whatever survives
  // RobustPublisher's retries must still be a fully verified release.
  const char* publish_points[] = {
      failpoints::kPublishPerturb, failpoints::kPublishGeneralizeTds,
      failpoints::kPublishGeneralizeIncognito, failpoints::kPublishSample,
      failpoints::kPublishAssemble};
  int released = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    reg().DisableAll();
    for (const char* name : publish_points) {
      ASSERT_TRUE(
          reg().Enable(name, "prob(0.4," + std::to_string(seed) + ")").ok());
    }
    PgOptions options;
    options.k = 5;
    options.p = 0.4;
    options.seed = seed;
    RobustPublisher publisher(options, RobustPublishOptions{});
    PublishReport report;
    Result<PublishedTable> result = publisher.Publish(
        clinic_.table, clinic_.TaxonomyPointers(), &report);
    if (result.ok()) {
      ++released;
      EXPECT_TRUE(report.audit_clean);
      reg().DisableAll();  // audit again without interference
      Status audit = VerifyPublication(clinic_.table, *result);
      EXPECT_TRUE(audit.ok()) << audit.ToString();
    } else {
      EXPECT_FALSE(report.final_status.ok());
    }
  }
  // With p_fail = 0.4 per phase and 6 reseeded attempts, at least one of
  // the 8 runs publishes (probability of none is astronomically small).
  EXPECT_GE(released, 1);
}

// ------------------------------------------------- robust publish semantics

TEST_F(ChaosSweepTest, TransientFaultIsRetriedWithFreshSeed) {
  obs::ScopedLogCapture capture(obs::LogLevel::kWarn);
  ASSERT_TRUE(reg().Enable(failpoints::kPublishPerturb, "times(1)").ok());
  PgOptions options;
  options.k = 5;
  options.p = 0.4;
  options.seed = 99;
  RobustPublisher publisher(options, RobustPublishOptions{});
  PublishReport report;
  Result<PublishedTable> result =
      publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_TRUE(report.attempts[0].outcome.IsInternal());
  EXPECT_TRUE(report.attempts[1].outcome.ok());
  EXPECT_NE(report.attempts[0].seed, report.attempts[1].seed);
  EXPECT_EQ(report.attempts[0].seed, options.seed);
  EXPECT_FALSE(report.fallback_used);
  EXPECT_TRUE(report.audit_clean);
  EXPECT_TRUE(report.final_status.ok());
  // The retry narrates itself: the injected fault and the warn-level
  // retry decision both surface as structured events.
  EXPECT_TRUE(capture.sink().HasEvent("failpoint_hit"));
  const auto retries = capture.sink().EventsNamed("publish.retry");
  ASSERT_EQ(retries.size(), 1u);
  EXPECT_EQ(retries[0].FindField("attempt")->AsInt64().ValueOrDie(), 1);
}

TEST_F(ChaosSweepTest, GeneralizerFallbackEngagesWhenTdsIsDown) {
  obs::ScopedLogCapture capture(obs::LogLevel::kWarn);
  ASSERT_TRUE(
      reg().Enable(failpoints::kPublishGeneralizeTds, "always").ok());
  PgOptions options;
  options.k = 5;
  options.p = 0.4;
  RobustPublishOptions policy;
  policy.max_attempts = 2;
  RobustPublisher publisher(options, policy);
  PublishReport report;
  Result<PublishedTable> result =
      publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(report.fallback_used);
  ASSERT_EQ(report.attempts.size(), 3u);  // 2 TDS failures + 1 Incognito
  EXPECT_EQ(report.attempts[2].generalizer,
            PgOptions::Generalizer::kIncognito);
  EXPECT_TRUE(report.audit_clean);
  const auto fallbacks = capture.sink().EventsNamed("publish.fallback");
  ASSERT_EQ(fallbacks.size(), 1u);
  EXPECT_EQ(
      fallbacks[0].FindField("generalizer")->AsString().ValueOrDie(),
      "incognito");
  reg().DisableAll();
  EXPECT_TRUE(VerifyPublication(clinic_.table, *result).ok());
}

TEST_F(ChaosSweepTest, AuditFailureFailsClosed) {
  ASSERT_TRUE(reg().Enable(failpoints::kPublishAudit, "always").ok());
  PgOptions options;
  options.k = 5;
  options.p = 0.4;
  RobustPublisher publisher(options, RobustPublishOptions{});
  PublishReport report;
  Result<PublishedTable> result =
      publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
  // Every pipeline run succeeded, every audit failed: nothing escapes.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
  EXPECT_NE(result.status().message().find("failed closed"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_FALSE(report.audit_clean);
  for (const PublishReport::Attempt& attempt : report.attempts) {
    EXPECT_TRUE(attempt.outcome.ok());
    EXPECT_TRUE(attempt.audited);
    EXPECT_FALSE(attempt.audit.ok());
  }
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("FAILED"), std::string::npos) << summary;
}

TEST_F(ChaosSweepTest, PermanentErrorIsNotRetried) {
  PgOptions options;
  options.k = 5;
  options.p = 1.7;  // invalid retention: no amount of retrying helps
  RobustPublisher publisher(options, RobustPublishOptions{});
  PublishReport report;
  Result<PublishedTable> result =
      publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_TRUE(report.attempts.empty());  // rejected before any attempt
}

// ------------------------------------------- faults inside worker threads

// `perturb.worker_fail` sits *inside* the ParallelFor chunk body, so when
// the pipeline runs multi-threaded the fault originates on a pool worker.
// The contract: the error crosses the thread boundary as a plain Status,
// RobustPublisher fails closed exactly as for a caller-thread fault, and
// the structured event still carries the worker's phase tag.

TEST_F(ChaosSweepTest, WorkerFaultFailsClosedAtEveryThreadCount) {
  for (int threads : {1, 2}) {
    SCOPED_TRACE(threads);
    ASSERT_TRUE(reg().Enable(failpoints::kPerturbWorker, "always").ok());
    PgOptions options;
    options.k = 5;
    options.p = 0.4;
    options.seed = 1234;
    options.num_threads = threads;
    RobustPublishOptions policy;
    policy.max_attempts = 1;
    RobustPublisher publisher(options, policy);
    PublishReport report;
    Result<PublishedTable> result =
        publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsInternal()) << result.status().ToString();
    EXPECT_NE(result.status().message().find(failpoints::kPerturbWorker),
              std::string::npos)
        << result.status().ToString();
    EXPECT_FALSE(report.final_status.ok());
    EXPECT_FALSE(report.audit_clean);
    reg().DisableAll();
  }
}

TEST_F(ChaosSweepTest, WorkerFaultEventCarriesWorkerPhaseTag) {
  // Large enough for several perturbation chunks, so with a 2-thread pool
  // the failpoint genuinely fires on pool workers, not just the caller.
  CensusDataset big = GenerateClinic(10000, 8).ValueOrDie();
  obs::ScopedLogCapture capture(obs::LogLevel::kWarn);
  ASSERT_TRUE(reg().Enable(failpoints::kPerturbWorker, "always").ok());
  PgOptions options;
  options.k = 5;
  options.p = 0.4;
  options.seed = 4321;
  options.num_threads = 2;
  RobustPublishOptions policy;
  policy.max_attempts = 1;
  RobustPublisher publisher(options, policy);
  Result<PublishedTable> result =
      publisher.Publish(big.table, big.TaxonomyPointers());
  ASSERT_FALSE(result.ok());
  const auto events = capture.sink().EventsNamed("failpoint_hit");
  ASSERT_GE(events.size(), 1u);
  for (const auto& event : events) {
    const obs::JsonValue* point = event.FindField("point");
    ASSERT_NE(point, nullptr);
    EXPECT_EQ(point->AsString().ValueOrDie(), failpoints::kPerturbWorker);
    const obs::JsonValue* phase = event.FindField("phase");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->AsString().ValueOrDie(), "worker_fail");
  }
}

TEST_F(ChaosSweepTest, TransientWorkerFaultIsRetriedToSuccess) {
  ASSERT_TRUE(reg().Enable(failpoints::kPerturbWorker, "times(1)").ok());
  PgOptions options;
  options.k = 5;
  options.p = 0.4;
  options.seed = 99;
  options.num_threads = 2;
  RobustPublisher publisher(options, RobustPublishOptions{});
  PublishReport report;
  Result<PublishedTable> result =
      publisher.Publish(clinic_.table, clinic_.TaxonomyPointers(), &report);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_TRUE(report.attempts[0].outcome.IsInternal());
  EXPECT_TRUE(report.attempts[1].outcome.ok());
  EXPECT_TRUE(report.audit_clean);
}

}  // namespace
}  // namespace pgpub
