#include <gtest/gtest.h>

#include "attack/adversaries.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "core/pg_publisher.h"
#include "datagen/census.h"
#include "diversity/ldiversity.h"
#include "generalize/tds.h"

namespace pgpub {
namespace {

// The historical harness entrypoints, restated through the scenario
// framework: a fixed release + the corruption-linking adversary. Pinned
// expectations below carry over unchanged because the trial bodies are
// draw-for-draw identical.
Result<BreachStats> RunPgScenario(const PublishedTable& published,
                                  const ExternalDatabase& edb,
                                  const Table& microdata,
                                  const BreachHarnessOptions& options) {
  ScenarioDataset dataset;
  dataset.name = "census";
  dataset.microdata = &microdata;
  dataset.sensitive_attr = published.sensitive_attr();
  dataset.edb = &edb;
  ScenarioOptions scenario;
  scenario.harness = options;
  FixedPgRelease publisher(&published);
  CorruptionLinkingAdversary adversary;
  return BreachScenario::Run(publisher, adversary, dataset, scenario);
}

Result<BreachStats> RunGenScenario(const Table& microdata,
                                   const QiGroups& groups, int sensitive_attr,
                                   const BreachHarnessOptions& options) {
  ScenarioDataset dataset;
  dataset.name = "census";
  dataset.microdata = &microdata;
  dataset.sensitive_attr = sensitive_attr;
  ScenarioOptions scenario;
  scenario.harness = options;
  FixedGeneralizationRelease publisher(&groups);
  CorruptionLinkingAdversary adversary;
  return BreachScenario::Run(publisher, adversary, dataset, scenario);
}

struct BreachFixture {
  CensusDataset census = GenerateCensus(8000, 21).ValueOrDie();
  PublishedTable published;
  ExternalDatabase edb;

  explicit BreachFixture(double p = 0.3, int k = 4) {
    PgOptions options;
    options.k = k;
    options.p = p;
    options.seed = 31;
    PgPublisher publisher(options);
    published =
        publisher.Publish(census.table, census.TaxonomyPointers())
            .ValueOrDie();
    Rng rng(32);
    edb = ExternalDatabase::FromMicrodata(census.table, 800, rng);
  }
};

TEST(BreachHarnessTest, RejectsInfeasibleOptions) {
  BreachFixture f;
  BreachHarnessOptions options;
  options.rho1 = 1.5;  // must be in (0,1)
  EXPECT_TRUE(RunPgScenario(f.published, f.edb, f.census.table, options)
                  .status()
                  .IsInvalidArgument());
  options.rho1 = 0.2;
  options.corruption_rate = -0.1;
  EXPECT_TRUE(RunPgScenario(f.published, f.edb, f.census.table, options)
                  .status()
                  .IsInvalidArgument());
  options.corruption_rate = 0.5;
  options.lambda = 0.0;
  EXPECT_TRUE(RunPgScenario(f.published, f.edb, f.census.table, options)
                  .status()
                  .IsInvalidArgument());
}

class CorruptionSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorruptionSweep, PgNeverBreachesTheoremBounds) {
  const double rate = GetParam();
  BreachFixture f;
  BreachHarnessOptions options;
  options.num_victims = 120;
  options.corruption_rate = rate;
  options.lambda = 0.1;
  options.rho1 = 0.2;
  options.seed = 100 + static_cast<uint64_t>(rate * 100);
  options.prior_kind = BreachHarnessOptions::PriorKind::kSkewTrue;

  BreachStats stats =
      RunPgScenario(f.published, f.edb, f.census.table, options).ValueOrDie();
  EXPECT_EQ(stats.attacks, options.num_victims);
  EXPECT_EQ(stats.delta_breaches, 0u) << "corruption=" << rate;
  EXPECT_EQ(stats.rho_breaches, 0u) << "corruption=" << rate;
  EXPECT_LE(stats.max_h, stats.h_top + 1e-9);
  EXPECT_LE(stats.max_growth, stats.delta_bound + 1e-9);
  EXPECT_LE(stats.max_posterior_rho1, stats.rho2_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, CorruptionSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

class PriorKindSweep
    : public ::testing::TestWithParam<BreachHarnessOptions::PriorKind> {};

TEST_P(PriorKindSweep, NoBreachUnderAnyHarnessPrior) {
  BreachFixture f;
  BreachHarnessOptions options;
  options.num_victims = 100;
  options.corruption_rate = 1.0;  // worst case: everyone else corrupted
  options.lambda = 0.1;
  options.prior_kind = GetParam();
  options.seed = 9;
  BreachStats stats =
      RunPgScenario(f.published, f.edb, f.census.table, options).ValueOrDie();
  EXPECT_EQ(stats.delta_breaches, 0u);
  EXPECT_EQ(stats.rho_breaches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, PriorKindSweep,
    ::testing::Values(BreachHarnessOptions::PriorKind::kUniform,
                      BreachHarnessOptions::PriorKind::kSkewTrue,
                      BreachHarnessOptions::PriorKind::kRandom));

TEST(BreachHarnessTest, GrowthIsPositiveUnderStrongCorruption) {
  // Sanity: the harness is not vacuous — adversaries do learn something,
  // just never more than the bound.
  BreachFixture f;
  BreachHarnessOptions options;
  options.num_victims = 150;
  options.corruption_rate = 1.0;
  options.lambda = 0.1;
  options.seed = 11;
  BreachStats stats =
      RunPgScenario(f.published, f.edb, f.census.table, options).ValueOrDie();
  EXPECT_GT(stats.max_growth, 0.0);
  EXPECT_GT(stats.max_h, 0.0);
}

TEST(BreachHarnessTest, LowerRetentionLowersGrowth) {
  BreachHarnessOptions options;
  options.num_victims = 150;
  options.corruption_rate = 1.0;
  options.lambda = 0.1;
  options.seed = 13;

  BreachFixture strong(0.1, 4);
  BreachFixture weak(0.6, 4);
  BreachStats s_strong = RunPgScenario(strong.published, strong.edb,
                                       strong.census.table, options).ValueOrDie();
  BreachStats s_weak =
      RunPgScenario(weak.published, weak.edb, weak.census.table, options).ValueOrDie();
  EXPECT_LT(s_strong.max_growth, s_weak.max_growth);
  EXPECT_LT(s_strong.delta_bound, s_weak.delta_bound);
}

// ------------------------------------- conventional generalization failure

TEST(GeneralizationBreachTest, FullCorruptionCausesCertainDisclosure) {
  // Lemma 2 empirically: with corruption of every other group member the
  // conventional release hands the adversary the exact sensitive value.
  CensusDataset census = GenerateCensus(6000, 41).ValueOrDie();
  const int sens = CensusColumns::kIncome;
  const std::vector<int> qi = census.table.schema().QiIndices();
  TdsOptions tds_options;
  tds_options.k = 4;
  TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                         census.table.column(sens), 50, tds_options);
  GlobalRecoding recoding = tds.Run().ValueOrDie();
  QiGroups groups = ComputeQiGroups(census.table, recoding);

  BreachHarnessOptions options;
  options.num_victims = 100;
  options.corruption_rate = 1.0;
  options.lambda = 0.1;
  options.prior_kind = BreachHarnessOptions::PriorKind::kUniform;
  options.seed = 17;
  BreachStats stats = RunGenScenario(
      census.table, groups, sens, options).ValueOrDie();
  // Every attack ends in a point mass (the victim's value disclosed).
  EXPECT_EQ(stats.point_mass_disclosures, stats.attacks);
  // Growth approaches 1 - 1/|U^s|.
  EXPECT_GT(stats.max_growth, 0.9);
}

TEST(GeneralizationBreachTest, PgBeatsGeneralizationUnderCorruption) {
  CensusDataset census = GenerateCensus(6000, 43).ValueOrDie();
  const int sens = CensusColumns::kIncome;
  const std::vector<int> qi = census.table.schema().QiIndices();
  TdsOptions tds_options;
  tds_options.k = 4;
  TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                         census.table.column(sens), 50, tds_options);
  GlobalRecoding recoding = tds.Run().ValueOrDie();
  QiGroups groups = ComputeQiGroups(census.table, recoding);

  PgOptions pg_options;
  pg_options.k = 4;
  pg_options.p = 0.3;
  pg_options.seed = 44;
  PgPublisher publisher(pg_options);
  PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers())
          .ValueOrDie();
  Rng rng(45);
  ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(census.table, 0, rng);

  BreachHarnessOptions options;
  options.num_victims = 120;
  options.corruption_rate = 1.0;
  options.lambda = 0.1;
  options.seed = 46;
  BreachStats gen = RunGenScenario(
      census.table, groups, sens, options).ValueOrDie();
  BreachStats pg = RunPgScenario(published, edb, census.table, options).ValueOrDie();
  EXPECT_GT(gen.max_growth, pg.max_growth + 0.3);
}

TEST(GeneralizationBreachTest, NoCorruptionStillLeaksLemma1Style) {
  // Even without corruption, conventional generalization can produce
  // growth far beyond PG's Theorem 3 bound (Lemma 1's message).
  CensusDataset census = GenerateCensus(6000, 47).ValueOrDie();
  const int sens = CensusColumns::kIncome;
  const std::vector<int> qi = census.table.schema().QiIndices();
  TdsOptions tds_options;
  tds_options.k = 4;
  TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                         census.table.column(sens), 50, tds_options);
  QiGroups groups =
      ComputeQiGroups(census.table, tds.Run().ValueOrDie());

  BreachHarnessOptions options;
  options.num_victims = 200;
  options.corruption_rate = 0.0;
  options.lambda = 0.1;
  options.prior_kind = BreachHarnessOptions::PriorKind::kUniform;
  options.seed = 48;
  BreachStats stats = RunGenScenario(
      census.table, groups, sens, options).ValueOrDie();
  PgParams pg_params{0.3, 4, 0.1, 50};
  EXPECT_GT(stats.max_growth, MinDelta(pg_params));
}

}  // namespace
}  // namespace pgpub
