#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "diversity/ldiversity.h"
#include "generalize/incognito.h"
#include "generalize/metrics.h"
#include "generalize/mondrian.h"
#include "generalize/qi_groups.h"
#include "generalize/tds.h"

namespace pgpub {
namespace {

/// Small synthetic microdata: two numeric QI attributes plus a numeric
/// sensitive column; values clustered so k-anonymity is non-trivial.
struct Fixture {
  Table table;
  std::vector<int> qi;
  int sens;
  Taxonomy tax_a;
  Taxonomy tax_b;
};

Fixture MakeFixture(size_t n, uint64_t seed) {
  Schema schema;
  schema.AddAttribute(
      {"A", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"B", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"S", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(0, 15),
                                          AttributeDomain::Numeric(0, 7),
                                          AttributeDomain::Numeric(0, 4)};
  Rng rng(seed);
  std::vector<std::vector<int32_t>> cols(3);
  for (size_t i = 0; i < n; ++i) {
    int32_t a = static_cast<int32_t>(rng.UniformU64(16));
    int32_t b = static_cast<int32_t>(rng.UniformU64(8));
    // Sensitive correlates with A so info gain is meaningful.
    int32_t s = std::min<int32_t>(4, (a / 4 + static_cast<int32_t>(
                                                  rng.UniformU64(2))));
    cols[0].push_back(a);
    cols[1].push_back(b);
    cols[2].push_back(s);
  }
  Fixture f{
      Table::Create(schema, domains, std::move(cols)).ValueOrDie(),
      {0, 1},
      2,
      Taxonomy::Binary(16, "A:*"),
      Taxonomy::Binary(8, "B:*")};
  return f;
}

QiGroups GroupsOf(const Fixture& f, const GlobalRecoding& rec) {
  return ComputeQiGroups(f.table, rec);
}

// --------------------------------------------------------------- QiGroups

TEST(QiGroupsTest, GroupsPartitionRows) {
  Fixture f = MakeFixture(500, 1);
  GlobalRecoding rec = GlobalRecoding::AllIdentity(f.table, f.qi);
  QiGroups g = GroupsOf(f, rec);
  size_t covered = 0;
  for (size_t gid = 0; gid < g.num_groups(); ++gid) {
    for (uint32_t r : g.group_rows[gid]) {
      EXPECT_EQ(g.row_to_group[r], static_cast<int32_t>(gid));
      ++covered;
    }
  }
  EXPECT_EQ(covered, f.table.num_rows());
}

TEST(QiGroupsTest, IdentityGroupsShareExactQi) {
  Fixture f = MakeFixture(300, 2);
  GlobalRecoding rec = GlobalRecoding::AllIdentity(f.table, f.qi);
  QiGroups g = GroupsOf(f, rec);
  for (const auto& rows : g.group_rows) {
    for (uint32_t r : rows) {
      EXPECT_EQ(f.table.value(r, 0), f.table.value(rows[0], 0));
      EXPECT_EQ(f.table.value(r, 1), f.table.value(rows[0], 1));
    }
  }
}

TEST(QiGroupsTest, SingleRecodingYieldsOneGroup) {
  Fixture f = MakeFixture(100, 3);
  QiGroups g = GroupsOf(f, GlobalRecoding::AllSingle(f.table, f.qi));
  EXPECT_EQ(g.num_groups(), 1u);
  EXPECT_EQ(g.MinGroupSize(), 100u);
  EXPECT_EQ(g.MaxGroupSize(), 100u);
}

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, KAnonymityThreshold) {
  Fixture f = MakeFixture(64, 4);
  QiGroups g = GroupsOf(f, GlobalRecoding::AllSingle(f.table, f.qi));
  EXPECT_TRUE(IsKAnonymous(g, 64));
  EXPECT_FALSE(IsKAnonymous(g, 65));
}

TEST(MetricsTest, DiscernibilityPenalty) {
  QiGroups g;
  g.group_rows = {{0, 1}, {2, 3, 4}};
  EXPECT_EQ(DiscernibilityPenalty(g), 4 + 9);
}

TEST(MetricsTest, AverageGroupRatio) {
  QiGroups g;
  g.group_rows = {{0, 1}, {2, 3, 4, 5}};
  EXPECT_DOUBLE_EQ(AverageGroupRatio(g, 3), 1.0);
}

TEST(MetricsTest, NcpBoundsAndExtremes) {
  Fixture f = MakeFixture(200, 5);
  EXPECT_DOUBLE_EQ(
      GlobalNcp(f.table, GlobalRecoding::AllIdentity(f.table, f.qi)), 0.0);
  EXPECT_DOUBLE_EQ(
      GlobalNcp(f.table, GlobalRecoding::AllSingle(f.table, f.qi)), 1.0);
}

// -------------------------------------------------------------------- TDS

class TdsKSweep : public ::testing::TestWithParam<int> {};

TEST_P(TdsKSweep, ProducesKAnonymousGlobalRecoding) {
  const int k = GetParam();
  Fixture f = MakeFixture(800, 10 + k);
  TdsOptions opt;
  opt.k = k;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  QiGroups g = GroupsOf(f, rec);
  EXPECT_TRUE(IsKAnonymous(g, k)) << "k=" << k;
  // G3 (global recoding): gen values partition each domain by construction;
  // verify distinct signatures have disjoint generalized boxes.
  for (size_t i = 0; i < rec.per_attr.size(); ++i) {
    const AttributeRecoding& ar = rec.per_attr[i];
    int32_t expect_lo = 0;
    for (int32_t gv = 0; gv < ar.num_gen_values(); ++gv) {
      EXPECT_EQ(ar.GenInterval(gv).lo, expect_lo);
      expect_lo = ar.GenInterval(gv).hi + 1;
    }
    EXPECT_EQ(expect_lo, f.table.domain(rec.qi_attrs[i]).size());
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, TdsKSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 10, 16, 25));

TEST(TdsTest, RefinesBeyondTrivialWhenDataAllows) {
  Fixture f = MakeFixture(2000, 42);
  TdsOptions opt;
  opt.k = 4;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_GT(tds.num_specializations(), 0);
  QiGroups g = GroupsOf(f, rec);
  EXPECT_GT(g.num_groups(), 8u);
}

TEST(TdsTest, RespectsMaxSpecializations) {
  Fixture f = MakeFixture(1000, 7);
  TdsOptions opt;
  opt.k = 2;
  opt.max_specializations = 3;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_LE(tds.num_specializations(), 3);
  int total_segments = 0;
  for (const auto& ar : rec.per_attr) total_segments += ar.num_gen_values();
  EXPECT_LE(total_segments, 2 + 3);  // each binary spec adds one segment
}

TEST(TdsTest, FailsWhenFewerRowsThanK) {
  Fixture f = MakeFixture(5, 8);
  TdsOptions opt;
  opt.k = 10;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  EXPECT_TRUE(tds.Run().status().IsFailedPrecondition());
}

TEST(TdsTest, DynamicBinarySplitsWithoutTaxonomy) {
  Fixture f = MakeFixture(800, 9);
  TdsOptions opt;
  opt.k = 5;
  TopDownSpecializer tds(f.table, f.qi, {nullptr, nullptr},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_TRUE(IsKAnonymous(GroupsOf(f, rec), 5));
  EXPECT_GT(tds.num_specializations(), 0);
}

TEST(TdsTest, MixedTaxonomyAndDynamic) {
  Fixture f = MakeFixture(600, 10);
  TdsOptions opt;
  opt.k = 4;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, nullptr},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_TRUE(IsKAnonymous(GroupsOf(f, rec), 4));
}

TEST(TdsTest, DeterministicAcrossRuns) {
  Fixture f = MakeFixture(500, 11);
  TdsOptions opt;
  opt.k = 3;
  auto run = [&]() {
    TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                           f.table.column(f.sens), 5, opt);
    return tds.Run().ValueOrDie();
  };
  GlobalRecoding r1 = run(), r2 = run();
  for (size_t i = 0; i < r1.per_attr.size(); ++i) {
    EXPECT_EQ(r1.per_attr[i].starts(), r2.per_attr[i].starts());
  }
}

TEST(TdsTest, ConstraintBlocksSpecialization) {
  Fixture f = MakeFixture(600, 12);
  // Require every group to keep at least 3 distinct sensitive values.
  DistinctLDiversity diversity(3);
  TdsOptions opt;
  opt.k = 2;
  opt.constraint = &diversity;
  opt.constraint_attr = f.sens;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  QiGroups g = GroupsOf(f, rec);
  EXPECT_TRUE(IsKAnonymous(g, 2));
  EXPECT_TRUE(AllGroupsSatisfy(f.table, g, f.sens, diversity));
  EXPECT_GE(MinDistinctSensitive(f.table, g, f.sens), 3);
}

TEST(TdsTest, UnsatisfiableConstraintFailsUpfront) {
  Fixture f = MakeFixture(100, 13);
  DistinctLDiversity diversity(50);  // sensitive domain has only 5 values
  TdsOptions opt;
  opt.k = 2;
  opt.constraint = &diversity;
  opt.constraint_attr = f.sens;
  TopDownSpecializer tds(f.table, f.qi, {&f.tax_a, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  EXPECT_TRUE(tds.Run().status().IsFailedPrecondition());
}

TEST(TdsTest, TaxonomyDomainMismatchRejected) {
  Fixture f = MakeFixture(100, 14);
  Taxonomy wrong = Taxonomy::Binary(5, "wrong");
  TdsOptions opt;
  opt.k = 2;
  TopDownSpecializer tds(f.table, f.qi, {&wrong, &f.tax_b},
                         f.table.column(f.sens), 5, opt);
  EXPECT_TRUE(tds.Run().status().IsInvalidArgument());
}

// -------------------------------------------------------------- Incognito

class IncognitoKSweep : public ::testing::TestWithParam<int> {};

TEST_P(IncognitoKSweep, MinimalKAnonymousFullDomain) {
  const int k = GetParam();
  Fixture f = MakeFixture(400, 20 + k);
  IncognitoOptions opt;
  opt.k = k;
  GlobalRecoding rec =
      IncognitoSearch(f.table, f.qi, {&f.tax_a, &f.tax_b}, opt)
          .ValueOrDie();
  QiGroups g = GroupsOf(f, rec);
  EXPECT_TRUE(IsKAnonymous(g, k));
}

INSTANTIATE_TEST_SUITE_P(KValues, IncognitoKSweep,
                         ::testing::Values(2, 5, 10, 40));

TEST(IncognitoTest, ResultIsMinimalOnItsPath) {
  Fixture f = MakeFixture(300, 33);
  IncognitoOptions opt;
  opt.k = 5;
  GlobalRecoding rec =
      IncognitoSearch(f.table, f.qi, {&f.tax_a, &f.tax_b}, opt)
          .ValueOrDie();
  // Depths of the found node.
  auto depth_of = [](const Taxonomy& t, const AttributeRecoding& ar) {
    // Full-domain cut: the depth of the node matching the first interval.
    return t.node(t.FindNode(ar.GenInterval(0))).depth;
  };
  std::vector<int> depths = {depth_of(f.tax_a, rec.per_attr[0]),
                             depth_of(f.tax_b, rec.per_attr[1])};
  // Specializing any single attribute one more level must break
  // k-anonymity (minimality).
  std::vector<const Taxonomy*> taxonomies = {&f.tax_a, &f.tax_b};
  for (size_t i = 0; i < depths.size(); ++i) {
    if (depths[i] >= taxonomies[i]->height()) continue;
    std::vector<int> deeper = depths;
    deeper[i]++;
    GlobalRecoding child = RecodingAtDepths(f.qi, taxonomies, deeper);
    EXPECT_FALSE(IsKAnonymous(ComputeQiGroups(f.table, child), opt.k));
  }
}

TEST(IncognitoTest, RequiresTaxonomies) {
  Fixture f = MakeFixture(100, 34);
  IncognitoOptions opt;
  EXPECT_TRUE(IncognitoSearch(f.table, f.qi, {&f.tax_a, nullptr}, opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(IncognitoTest, FewerRowsThanKFails) {
  Fixture f = MakeFixture(3, 35);
  IncognitoOptions opt;
  opt.k = 10;
  EXPECT_TRUE(IncognitoSearch(f.table, f.qi, {&f.tax_a, &f.tax_b}, opt)
                  .status()
                  .IsFailedPrecondition());
}

TEST(IncognitoTest, NeverWorseNcpThanFullSuppression) {
  Fixture f = MakeFixture(400, 36);
  IncognitoOptions opt;
  opt.k = 3;
  GlobalRecoding rec =
      IncognitoSearch(f.table, f.qi, {&f.tax_a, &f.tax_b}, opt)
          .ValueOrDie();
  EXPECT_LE(GlobalNcp(f.table, rec), 1.0);
}

// --------------------------------------------------------------- Mondrian

class MondrianKSweep : public ::testing::TestWithParam<int> {};

TEST_P(MondrianKSweep, StrictPartitionsAreKAnonymous) {
  const int k = GetParam();
  Fixture f = MakeFixture(700, 40 + k);
  MondrianOptions opt;
  opt.k = k;
  LocalRecoding rec = MondrianPartition(f.table, f.qi, opt).ValueOrDie();
  // Every row assigned; every group >= k; boxes cover their rows.
  std::vector<size_t> sizes(rec.num_groups(), 0);
  for (size_t r = 0; r < f.table.num_rows(); ++r) {
    const int32_t gid = rec.row_to_group[r];
    ASSERT_GE(gid, 0);
    sizes[gid]++;
    for (size_t i = 0; i < f.qi.size(); ++i) {
      EXPECT_TRUE(rec.group_boxes[gid][i].Contains(
          f.table.value(r, f.qi[i])));
    }
  }
  for (size_t s : sizes) EXPECT_GE(s, static_cast<size_t>(k));
}

INSTANTIATE_TEST_SUITE_P(KValues, MondrianKSweep,
                         ::testing::Values(2, 4, 8, 20, 50));

TEST(MondrianTest, FinerThanGlobalRecodingOnUniformData) {
  Fixture f = MakeFixture(2000, 55);
  MondrianOptions mopt;
  mopt.k = 5;
  LocalRecoding local = MondrianPartition(f.table, f.qi, mopt).ValueOrDie();

  IncognitoOptions iopt;
  iopt.k = 5;
  GlobalRecoding global =
      IncognitoSearch(f.table, f.qi, {&f.tax_a, &f.tax_b}, iopt)
          .ValueOrDie();
  // Multidimensional local recoding should discern at least as well.
  EXPECT_LE(LocalNcp(f.table, local), GlobalNcp(f.table, global) + 1e-9);
}

TEST(MondrianTest, FewerRowsThanKFails) {
  Fixture f = MakeFixture(3, 56);
  MondrianOptions opt;
  opt.k = 5;
  EXPECT_TRUE(MondrianPartition(f.table, f.qi, opt)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace pgpub
