/// \file server_chaos_test.cc
/// Chaos tests for the serving layer's failpoints: `server.admit_fail`,
/// `server.queue_corrupt` and `engine.cache_recheck_fail`. Each injected
/// fault must surface as a typed Status on exactly the request it hit —
/// never a crash, never a silently dropped request, and never a
/// published-but-unverified table riding along with an OK status.

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/verify.h"
#include "datagen/clinic.h"
#include "engine/fingerprint.h"
#include "engine/publication_engine.h"
#include "server/server_core.h"
#include "server/tenant_registry.h"

namespace pgpub {
namespace {

using server::ServerCore;
using server::ServerOptions;
using server::ServerRequest;
using server::ServerResponse;
using server::TenantOptions;
using server::TenantRegistry;

class ServerChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisableAll();
    clinic_ = GenerateClinic(400, 7).ValueOrDie();
  }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }

  FailpointRegistry& reg() { return FailpointRegistry::Global(); }

  std::unique_ptr<TenantRegistry> MakeRegistry() {
    auto registry = std::make_unique<TenantRegistry>(nullptr);
    TenantOptions options;
    options.engine.num_threads = 1;
    options.engine.robust.max_attempts = 1;
    options.engine.robust.allow_generalizer_fallback = false;
    Status added = registry->AddTenant(
        "alpha", Table(clinic_.table),
        std::vector<Taxonomy>(clinic_.taxonomies), std::move(options));
    EXPECT_TRUE(added.ok()) << added.ToString();
    return registry;
  }

  static ServerRequest Req(uint64_t stream) {
    ServerRequest request;
    request.tenant = "alpha";
    request.stream_id = stream;
    request.publish.options.k = 4;
    request.publish.options.p = 0.5;
    return request;
  }

  CensusDataset clinic_;
};

/// Response sink that blocks until n responses arrived.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServerResponse> responses;
  server::ResponseCallback Cb() {
    return [this](ServerResponse r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(r));
      cv.notify_all();
    };
  }
  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() >= n; });
  }
};

TEST_F(ServerChaosTest, AdmitFaultRejectsSynchronouslyWithTypedStatus) {
  auto registry = MakeRegistry();
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  ASSERT_TRUE(reg().Enable(failpoints::kServerAdmit, "always").ok());

  Collector col;
  Status st = core.Submit(Req(1), col.Cb());
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  EXPECT_NE(st.message().find(failpoints::kServerAdmit), std::string::npos)
      << st.ToString();

  // The fault rejected the request before it entered the queue: the
  // callback never runs, and recovery is immediate once disarmed.
  reg().DisableAll();
  Status recovered = core.Submit(Req(2), col.Cb());
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  col.WaitFor(1);
  core.Shutdown();
  EXPECT_EQ(col.responses.size(), 1u);
  EXPECT_EQ(col.responses[0].stream_id, 2u);
  EXPECT_TRUE(col.responses[0].status.ok());
  EXPECT_EQ(core.stats().rejected_admit_fault, 1u);
}

TEST_F(ServerChaosTest, QueueCorruptionAnswersTheRequestFailClosed) {
  auto registry = MakeRegistry();
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  ASSERT_TRUE(reg().Enable(failpoints::kServerQueueCorrupt, "times(1)").ok());

  Collector col;
  ASSERT_TRUE(core.Submit(Req(1), col.Cb()).ok());
  ASSERT_TRUE(core.Submit(Req(2), col.Cb()).ok());
  col.WaitFor(2);
  core.Shutdown();

  // Both admitted requests were answered — the corrupted one with a
  // typed Internal error naming the failpoint and carrying no table
  // bytes, its neighbor with a clean release.
  ASSERT_EQ(col.responses.size(), 2u);
  int corrupted = 0;
  int served = 0;
  for (const ServerResponse& r : col.responses) {
    if (r.status.ok()) {
      ++served;
      EXPECT_NE(r.digest, 0u);
    } else {
      ++corrupted;
      EXPECT_TRUE(r.status.IsInternal()) << r.status.ToString();
      EXPECT_NE(r.status.message().find(failpoints::kServerQueueCorrupt),
                std::string::npos);
      EXPECT_EQ(r.digest, 0u);
      EXPECT_EQ(r.rows, 0u);
    }
  }
  EXPECT_EQ(corrupted, 1);
  EXPECT_EQ(served, 1);
  EXPECT_EQ(core.stats().queue_corrupt, 1u);
}

TEST_F(ServerChaosTest, CacheRecheckFaultNeverReleasesUnverifiedTable) {
  // Engine-level: a corrupted cache recheck must fail that publish with
  // a typed Status, and what *is* published must re-verify from scratch.
  engine::EngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.robust.max_attempts = 1;
  engine_options.robust.allow_generalizer_fallback = false;
  auto eng = engine::PublicationEngine::Create(
                 Table(clinic_.table),
                 std::vector<Taxonomy>(clinic_.taxonomies), engine_options)
                 .ValueOrDie();

  engine::PublishRequest request;
  request.options.k = 4;
  request.options.p = 0.5;
  request.options.generalizer = PgOptions::Generalizer::kIncognito;
  request.options.seed = 1;
  Result<PublishedTable> cold = eng->Publish(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  // Warm path with the recheck fault armed: the cache hit is rejected.
  ASSERT_TRUE(reg().Enable(failpoints::kEngineCacheRecheck, "always").ok());
  request.options.seed = 2;  // same lattice, guaranteed recoding-cache hit
  Result<PublishedTable> faulted = eng->Publish(request);
  EXPECT_FALSE(faulted.ok());
  EXPECT_TRUE(faulted.status().IsInternal()) << faulted.status().ToString();
  EXPECT_NE(
      faulted.status().message().find(failpoints::kEngineCacheRecheck),
      std::string::npos)
      << faulted.status().ToString();

  // Disarmed, the same warm request serves — and the release withstands
  // a full independent audit (published implies verified, even through
  // the cache).
  reg().DisableAll();
  Result<PublishedTable> warm = eng->Publish(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  Status audit = VerifyPublication(clinic_.table, *warm);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST_F(ServerChaosTest, ProbabilisticServingChaosNeverDropsARequest) {
  // Coin-flip faults across both serving failpoints while a burst of
  // requests flows through: whatever the interleaving, submitted ==
  // sync-rejected + answered, and every OK answer carries a digest.
  auto registry = MakeRegistry();
  ServerOptions options;
  options.queue_capacity = 8;
  ServerCore core(registry.get(), options);
  ASSERT_TRUE(core.Start().ok());
  ASSERT_TRUE(reg().Enable(failpoints::kServerAdmit, "prob(0.3,11)").ok());
  ASSERT_TRUE(
      reg().Enable(failpoints::kServerQueueCorrupt, "prob(0.3,12)").ok());

  Collector col;
  const int total = 60;
  int sync_rejected = 0;
  int admitted = 0;
  for (int i = 0; i < total; ++i) {
    Status st = core.Submit(Req(100 + static_cast<uint64_t>(i)), col.Cb());
    if (st.ok()) {
      ++admitted;
    } else {
      ++sync_rejected;
    }
  }
  core.Shutdown();
  reg().DisableAll();

  EXPECT_EQ(admitted + sync_rejected, total);
  EXPECT_EQ(col.responses.size(), static_cast<size_t>(admitted));
  for (const ServerResponse& r : col.responses) {
    if (r.status.ok()) {
      EXPECT_NE(r.digest, 0u);
    } else {
      EXPECT_EQ(r.digest, 0u);  // no table bytes on any failure
    }
  }
}

}  // namespace
}  // namespace pgpub
