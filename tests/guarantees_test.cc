#include <gtest/gtest.h>

#include <cmath>

#include "core/guarantees.h"

namespace pgpub {
namespace {

constexpr double kPaperLambda = 0.1;
constexpr double kPaperRho1 = 0.2;
constexpr int kPaperUs = 50;

PgParams Paper(double p, int k) { return {p, k, kPaperLambda, kPaperUs}; }

// ----------------------------------------------------------- Table III(a)

struct Table3aRow {
  int k;
  double rho2;  // paper's printed ">= rho2" value
  double delta;
};

class Table3a : public ::testing::TestWithParam<Table3aRow> {};

TEST_P(Table3a, ReproducesPaperValues) {
  const Table3aRow row = GetParam();
  PgParams params = Paper(0.3, row.k);
  // The paper prints two decimals; our closed forms must agree within one
  // unit in the last printed digit.
  EXPECT_NEAR(MinRho2(params, kPaperRho1), row.rho2, 0.011)
      << "k=" << row.k;
  EXPECT_NEAR(MinDelta(params), row.delta, 0.011) << "k=" << row.k;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table3a,
    ::testing::Values(Table3aRow{2, 0.69, 0.47}, Table3aRow{4, 0.53, 0.31},
                      Table3aRow{6, 0.45, 0.24}, Table3aRow{8, 0.40, 0.19},
                      Table3aRow{10, 0.36, 0.16}));

// ----------------------------------------------------------- Table III(b)

struct Table3bRow {
  double p;
  double rho2;
  double delta;
};

class Table3b : public ::testing::TestWithParam<Table3bRow> {};

TEST_P(Table3b, ReproducesPaperValues) {
  const Table3bRow row = GetParam();
  PgParams params = Paper(row.p, 6);
  EXPECT_NEAR(MinRho2(params, kPaperRho1), row.rho2, 0.011)
      << "p=" << row.p;
  EXPECT_NEAR(MinDelta(params), row.delta, 0.011) << "p=" << row.p;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table3b,
    ::testing::Values(Table3bRow{0.15, 0.34, 0.12},
                      Table3bRow{0.20, 0.38, 0.16},
                      Table3bRow{0.25, 0.41, 0.20},
                      Table3bRow{0.30, 0.45, 0.24},
                      Table3bRow{0.35, 0.49, 0.28},
                      Table3bRow{0.40, 0.52, 0.32},
                      Table3bRow{0.45, 0.56, 0.36}));

// ------------------------------------------------------------- Components

TEST(GuaranteesTest, NoiseFloor) {
  EXPECT_NEAR(NoiseFloor(0.3, 50), 0.014, 1e-12);
  EXPECT_NEAR(NoiseFloor(1.0, 50), 0.0, 1e-12);
  EXPECT_NEAR(NoiseFloor(0.0, 4), 0.25, 1e-12);
}

TEST(GuaranteesTest, HTopHandComputed) {
  // p=0.3, k=2, lambda=0.1, us=50: (0.03+0.014)/(0.03+0.028).
  EXPECT_NEAR(HTop(Paper(0.3, 2)), 0.044 / 0.058, 1e-9);
  EXPECT_NEAR(HTop(Paper(0.3, 10)), 0.044 / 0.170, 1e-9);
}

TEST(GuaranteesTest, HTopEdges) {
  // k = 1: bound is 1 (the victim may be the only candidate).
  EXPECT_NEAR(HTop(Paper(0.3, 1)), 1.0, 1e-12);
  // p = 1: no noise, h_top = 1 regardless of k.
  EXPECT_NEAR(HTop(Paper(1.0, 8)), 1.0, 1e-12);
  // p = 0: h_top = 1/k.
  EXPECT_NEAR(HTop(Paper(0.0, 8)), 1.0 / 8.0, 1e-12);
}

TEST(GuaranteesTest, TheoremFBasics) {
  // F(0) = 0; F(1) = 0 (numerator -p + p).
  EXPECT_NEAR(TheoremF(0.0, 0.3, 50), 0.0, 1e-12);
  EXPECT_NEAR(TheoremF(1.0, 0.3, 50), 0.0, 1e-12);
  EXPECT_GT(TheoremF(0.1, 0.3, 50), 0.0);
}

TEST(GuaranteesTest, TheoremWmIsTheMaximizer) {
  const double p = 0.3;
  const int us = 50;
  const double wm = TheoremWm(p, us);
  const double fm = TheoremF(wm, p, us);
  for (double w = 0.01; w < 1.0; w += 0.01) {
    EXPECT_LE(TheoremF(w, p, us), fm + 1e-12) << "w=" << w;
  }
  // Hand value: u=0.014, wm = (sqrt(u^2+p*u)-u)/p.
  EXPECT_NEAR(wm, (std::sqrt(0.014 * 0.014 + 0.3 * 0.014) - 0.014) / 0.3,
              1e-12);
}

TEST(GuaranteesTest, MinDeltaUsesWmWhenLambdaLarge) {
  PgParams params = Paper(0.3, 6);
  params.lambda = 0.9;  // beyond w_m
  const double wm = TheoremWm(0.3, 50);
  EXPECT_NEAR(MinDelta(params), HTop(params) * TheoremF(wm, 0.3, 50),
              1e-12);
}

TEST(GuaranteesTest, DegenerateRetentionValues) {
  // p = 0: posterior == prior, so rho2 = rho1 and delta = 0.
  EXPECT_NEAR(MinRho2(Paper(0.0, 6), 0.2), 0.2, 1e-9);
  EXPECT_NEAR(MinDelta(Paper(0.0, 6)), 0.0, 1e-12);
  // p = 1: no protection from perturbation; rho2 collapses toward 1 as
  // k -> 1.
  EXPECT_NEAR(MinRho2(Paper(1.0, 1), 0.2), 1.0, 1e-9);
}

// ------------------------------------------------------- Monotonicity

class RetentionGrid : public ::testing::TestWithParam<int> {};

TEST_P(RetentionGrid, BoundsAreMonotoneInP) {
  const int k = GetParam();
  double prev_rho2 = 0.0, prev_delta = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    PgParams params = Paper(std::min(p, 1.0), k);
    const double rho2 = MinRho2(params, kPaperRho1);
    const double delta = MinDelta(params);
    EXPECT_GE(rho2 + 1e-9, prev_rho2) << "p=" << p;
    EXPECT_GE(delta + 1e-9, prev_delta) << "p=" << p;
    prev_rho2 = rho2;
    prev_delta = delta;
  }
}

INSTANTIATE_TEST_SUITE_P(KValues, RetentionGrid,
                         ::testing::Values(1, 2, 4, 6, 10, 25));

class KGrid : public ::testing::TestWithParam<double> {};

TEST_P(KGrid, BoundsAreMonotoneDecreasingInK) {
  const double p = GetParam();
  double prev_rho2 = 2.0, prev_delta = 2.0;
  for (int k = 1; k <= 64; k *= 2) {
    PgParams params = Paper(p, k);
    const double rho2 = MinRho2(params, kPaperRho1);
    const double delta = MinDelta(params);
    EXPECT_LE(rho2, prev_rho2 + 1e-9) << "k=" << k;
    EXPECT_LE(delta, prev_delta + 1e-9) << "k=" << k;
    prev_rho2 = rho2;
    prev_delta = delta;
  }
}

INSTANTIATE_TEST_SUITE_P(PValues, KGrid,
                         ::testing::Values(0.1, 0.3, 0.5, 0.8));

TEST(GuaranteesTest, BoundsAreMonotoneInLambda) {
  double prev_rho2 = 0.0, prev_delta = -1.0;
  for (double lambda = 0.02; lambda <= 1.0; lambda += 0.05) {
    PgParams params{0.3, 6, lambda, kPaperUs};
    EXPECT_GE(MinRho2(params, kPaperRho1) + 1e-9, prev_rho2);
    EXPECT_GE(MinDelta(params) + 1e-9, prev_delta);
    prev_rho2 = MinRho2(params, kPaperRho1);
    prev_delta = MinDelta(params);
  }
}

TEST(GuaranteesTest, CombinedRho2NeverWorseThanEitherRoute) {
  // A Delta-growth guarantee with Delta = rho2 - rho1 implies the
  // rho1-to-rho2 guarantee (Section II-B), so the combined bound takes the
  // better of the two theorem routes. It is often *strictly* better than
  // Theorem 2 alone (the reverse implication does not hold).
  for (double p : {0.15, 0.3, 0.45}) {
    for (int k : {2, 6, 10}) {
      PgParams params = Paper(p, k);
      const double combined = CombinedMinRho2(params, kPaperRho1);
      EXPECT_LE(combined, MinRho2(params, kPaperRho1) + 1e-12);
      EXPECT_LE(combined, kPaperRho1 + MinDelta(params) + 1e-12);
      EXPECT_GE(combined, kPaperRho1);
    }
  }
  // Concrete strict improvement at the Table III(a) corner.
  EXPECT_LT(CombinedMinRho2(Paper(0.3, 2), kPaperRho1),
            MinRho2(Paper(0.3, 2), kPaperRho1) - 1e-6);
}

TEST(GuaranteesTest, DownwardBreachGuarantee) {
  // Footnote 1: the downward floor is the complement of the upward bound
  // at the complemented prior.
  for (double p : {0.15, 0.3, 0.45}) {
    for (int k : {2, 6, 10}) {
      PgParams params = Paper(p, k);
      for (double rho1 : {0.3, 0.5, 0.8}) {
        const double floor = MaxDownwardRho2(params, rho1);
        EXPECT_NEAR(floor, 1.0 - MinRho2(params, 1.0 - rho1), 1e-12);
        // The floor can never exceed the prior threshold itself.
        EXPECT_LE(floor, rho1 + 1e-12);
        EXPECT_GE(floor, 0.0);
      }
    }
  }
  // p = 0: posterior == prior, so the floor equals rho1 exactly.
  EXPECT_NEAR(MaxDownwardRho2(Paper(0.0, 6), 0.5), 0.5, 1e-9);
}

TEST(GuaranteesTest, DownwardFloorWeakensWithP) {
  // More retention -> the adversary can also *lose* more confidence.
  double prev = 1.0;
  for (double p = 0.0; p <= 1.0; p += 0.1) {
    const double floor = MaxDownwardRho2(Paper(std::min(p, 1.0), 6), 0.6);
    EXPECT_LE(floor, prev + 1e-9);
    prev = floor;
  }
}

// ------------------------------------------------------------- Solvers

TEST(SolversTest, MaxRetentionForRhoRoundTrips) {
  for (int k : {2, 6, 10}) {
    for (double rho2 : {0.35, 0.45, 0.6}) {
      double p =
          MaxRetentionForRho(k, kPaperLambda, kPaperUs, kPaperRho1, rho2)
              .ValueOrDie();
      EXPECT_TRUE(SatisfiesRhoGuarantee(Paper(p, k), kPaperRho1, rho2));
      if (p < 1.0) {
        EXPECT_FALSE(SatisfiesRhoGuarantee(Paper(std::min(1.0, p + 1e-4), k),
                                           kPaperRho1, rho2));
      }
    }
  }
}

TEST(SolversTest, MaxRetentionForDeltaRoundTrips) {
  for (int k : {2, 6, 10}) {
    for (double delta : {0.1, 0.25, 0.4}) {
      double p = MaxRetentionForDelta(k, kPaperLambda, kPaperUs, delta)
                     .ValueOrDie();
      EXPECT_TRUE(SatisfiesDeltaGuarantee(Paper(p, k), delta));
      if (p < 1.0) {
        EXPECT_FALSE(
            SatisfiesDeltaGuarantee(Paper(std::min(1.0, p + 1e-4), k), delta));
      }
    }
  }
}

TEST(SolversTest, PaperTable3bConsistency) {
  // Solving for the Table III(b) guarantee at k = 6 should give back
  // (about) the p that generated it.
  double p = MaxRetentionForRho(6, kPaperLambda, kPaperUs, 0.2,
                                MinRho2(Paper(0.3, 6), 0.2))
                 .ValueOrDie();
  EXPECT_NEAR(p, 0.3, 1e-6);
}

TEST(SolversTest, InfeasibleTargets) {
  EXPECT_TRUE(MaxRetentionForRho(6, 0.1, 50, 0.5, 0.4)
                  .status()
                  .IsInvalidArgument());  // rho2 < rho1
  EXPECT_TRUE(MaxRetentionForDelta(6, 0.1, 50, 0.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(MaxRetentionForDelta(6, 0.1, 50, 1.5)
                  .status()
                  .IsInvalidArgument());
}

TEST(SolversTest, TrivialTargetsAllowFullRetention) {
  // A 1.0-growth "guarantee" is vacuous: any p works.
  EXPECT_NEAR(
      MaxRetentionForDelta(2, kPaperLambda, kPaperUs, 1.0).ValueOrDie(),
      1.0, 1e-12);
}

TEST(SolversTest, MinKForRho) {
  // At p=0.3, lambda=0.1, us=50 the k=6 bound is 0.4504 (Table III prints
  // 0.45 after rounding); a 0.46 target is first met at k=6.
  EXPECT_EQ(*MinKForRho(0.3, kPaperLambda, kPaperUs, 0.2, 0.46, 100), 6);
  EXPECT_TRUE(MinKForRho(1.0, 0.5, 2, 0.2, 0.3, 4).status().IsNotFound());
}

TEST(SolversTest, MinKForDelta) {
  // Table III(a): delta=0.24 first achievable at k=6 for p=0.3.
  EXPECT_EQ(*MinKForDelta(0.3, kPaperLambda, kPaperUs, 0.24, 100), 6);
  EXPECT_EQ(*MinKForDelta(0.3, kPaperLambda, kPaperUs, 0.47, 100), 2);
}

}  // namespace
}  // namespace pgpub
