/// Tests for the release verifier and the clinic workload.

#include <gtest/gtest.h>

#include "attack/adversaries.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "core/pg_publisher.h"
#include "core/verify.h"
#include "datagen/clinic.h"
#include "mining/evaluate.h"

namespace pgpub {
namespace {

// ----------------------------------------------------------- verifier

TEST(VerifyPublicationTest, AcceptsGenuineReleases) {
  for (uint64_t seed : {1, 2, 3}) {
    CensusDataset clinic = GenerateClinic(6000, seed).ValueOrDie();
    PgOptions options;
    options.k = 5;
    options.p = 0.3;
    options.seed = seed;
    PgPublisher publisher(options);
    PublishedTable published =
        publisher.Publish(clinic.table, clinic.TaxonomyPointers())
            .ValueOrDie();
    EXPECT_TRUE(VerifyPublication(clinic.table, published).ok());
  }
}

TEST(VerifyPublicationTest, DetectsForeignMicrodata) {
  // A release verified against *different* microdata must fail: the cell
  // populations cannot match.
  CensusDataset a = GenerateClinic(4000, 10).ValueOrDie();
  CensusDataset b = GenerateClinic(4000, 11).ValueOrDie();
  PgOptions options;
  options.k = 5;
  options.p = 0.3;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(a.table, a.TaxonomyPointers()).ValueOrDie();
  Status status = VerifyPublication(b.table, published);
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(VerifyPublicationTest, DetectsUndersizedK) {
  // Publish with k=2, then claim k=50: the verifier must catch G2.
  CensusDataset clinic = GenerateClinic(3000, 12).ValueOrDie();
  PgOptions options;
  options.k = 2;
  options.p = 0.3;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(clinic.table, clinic.TaxonomyPointers())
          .ValueOrDie();
  // Rebuild a tampered release claiming a larger k.
  std::vector<std::vector<int32_t>> qi_gen;
  std::vector<int32_t> sensitive;
  std::vector<uint32_t> group_size;
  for (size_t r = 0; r < published.num_rows(); ++r) {
    std::vector<int32_t> row;
    for (int i = 0; i < published.num_qi_attrs(); ++i) {
      row.push_back(published.qi_gen(r, i));
    }
    qi_gen.push_back(std::move(row));
    sensitive.push_back(published.sensitive(r));
    group_size.push_back(published.group_size(r));
  }
  PublishedTable tampered(
      published.source_schema(),
      std::vector<AttributeDomain>(clinic.table.domains()),
      published.recoding(), published.sensitive_attr(),
      published.retention_p(), /*k=*/50, std::move(qi_gen),
      std::move(sensitive), std::move(group_size));
  Status status = VerifyPublication(clinic.table, tampered);
  EXPECT_TRUE(status.IsFailedPrecondition());
}

// -------------------------------------------------------------- clinic

TEST(ClinicTest, ShapeAndDeterminism) {
  CensusDataset clinic = GenerateClinic(5000, 42).ValueOrDie();
  EXPECT_EQ(clinic.table.num_rows(), 5000u);
  EXPECT_EQ(clinic.table.num_attributes(), 4);
  EXPECT_EQ(clinic.table.domain(ClinicColumns::kDisease).size(), 40);
  EXPECT_EQ(*clinic.table.schema().SensitiveIndex(),
            ClinicColumns::kDisease);
  CensusDataset again = GenerateClinic(5000, 42).ValueOrDie();
  EXPECT_EQ(clinic.table.column(ClinicColumns::kDisease),
            again.table.column(ClinicColumns::kDisease));
}

TEST(ClinicTest, DiseaseMarginalIsSkewed) {
  CensusDataset clinic = GenerateClinic(40000, 7).ValueOrDie();
  std::vector<int64_t> hist =
      clinic.table.Histogram(ClinicColumns::kDisease);
  int64_t max_count = 0, min_count = INT64_MAX;
  for (int64_t c : hist) {
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  EXPECT_GT(max_count, 4 * std::max<int64_t>(min_count, 1));
}

TEST(ClinicTest, AgePredictsDiseaseBand) {
  CensusDataset clinic = GenerateClinic(40000, 8).ValueOrDie();
  // Young patients (<=30) should skew toward band 0 relative to the
  // elderly (>=75) who skew toward band 3.
  double young_band0 = 0, young_n = 0, old_band3 = 0, old_n = 0;
  for (size_t r = 0; r < clinic.table.num_rows(); ++r) {
    const int32_t age = 18 + clinic.table.value(r, ClinicColumns::kAge);
    const int band = clinic.table.value(r, ClinicColumns::kDisease) / 10;
    if (age <= 30) {
      ++young_n;
      if (band == 0) ++young_band0;
    } else if (age >= 75) {
      ++old_n;
      if (band == 3) ++old_band3;
    }
  }
  ASSERT_GT(young_n, 1000);
  ASSERT_GT(old_n, 1000);
  EXPECT_GT(young_band0 / young_n, 0.4);
  EXPECT_GT(old_band3 / old_n, 0.4);
}

TEST(ClinicTest, PgPipelineHoldsOnClinicWorkload) {
  // The complete PG contract must hold on this second data shape too:
  // publish, verify, attack without breach, mine above the floor.
  CensusDataset clinic = GenerateClinic(30000, 9).ValueOrDie();
  PgOptions options;
  options.k = 6;
  options.p = 0.3;
  options.seed = 10;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(clinic.table, clinic.TaxonomyPointers())
          .ValueOrDie();
  ASSERT_TRUE(VerifyPublication(clinic.table, published).ok());

  Rng rng(11);
  ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(clinic.table, 2000, rng);
  BreachHarnessOptions harness;
  harness.num_victims = 80;
  harness.corruption_rate = 1.0;
  harness.lambda = 0.1;
  harness.seed = 12;
  ScenarioDataset dataset;
  dataset.name = "clinic";
  dataset.microdata = &clinic.table;
  dataset.sensitive_attr = ClinicColumns::kDisease;
  dataset.edb = &edb;
  ScenarioOptions scenario;
  scenario.harness = harness;
  FixedPgRelease release(&published);
  CorruptionLinkingAdversary adversary;
  BreachStats stats =
      BreachScenario::Run(release, adversary, dataset, scenario).ValueOrDie();
  EXPECT_EQ(stats.delta_breaches, 0u);
  EXPECT_EQ(stats.rho_breaches, 0u);

  // Mine disease bands (4 categories of 10 codes each).
  CategoryMap bands({0, 10, 20, 30}, 40);
  Reconstructor reconstructor(0.3, bands.Weights());
  TreeOptions tree_options;
  tree_options.reconstructor = &reconstructor;
  tree_options.min_leaf_rows = 20;
  tree_options.min_split_rows = 40;
  tree_options.significance_chi2 = 10.0;
  DecisionTree tree =
      DecisionTree::Train(
          TreeDataset::FromPublished(published, bands, clinic.nominal),
          tree_options)
          .ValueOrDie();
  const std::vector<int> qi = clinic.table.schema().QiIndices();
  std::vector<int32_t> truth =
      bands.Map(clinic.table.column(ClinicColumns::kDisease));
  EvalResult eval = EvaluateTree(tree, clinic.table, qi, truth);
  EXPECT_LT(eval.error(),
            MajorityBaselineError(truth, bands.num_categories()) - 0.05);
}

}  // namespace
}  // namespace pgpub
