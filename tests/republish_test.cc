#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "republish/minvariance.h"

namespace pgpub {
namespace {

/// Synthetic dynamic population: owners with fixed values, churned across
/// rounds.
class Population {
 public:
  Population(int32_t domain_size, uint64_t seed)
      : domain_size_(domain_size), rng_(seed) {}

  /// Inserts `n` new owners with roughly uniform values.
  void Insert(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      values_[next_id_++] =
          static_cast<int32_t>(rng_.UniformU64(domain_size_));
    }
  }

  /// Deletes each alive owner independently with probability `rate`.
  void Churn(double rate) {
    std::vector<int64_t> doomed;
    for (const auto& [owner, value] : values_) {
      if (rng_.Bernoulli(rate)) doomed.push_back(owner);
    }
    for (int64_t owner : doomed) values_.erase(owner);
  }

  std::vector<std::pair<int64_t, int32_t>> Snapshot() const {
    std::vector<std::pair<int64_t, int32_t>> out(values_.begin(),
                                                 values_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  int32_t ValueOf(int64_t owner) const { return values_.at(owner); }

 private:
  int32_t domain_size_;
  Rng rng_;
  int64_t next_id_ = 0;
  std::map<int64_t, int32_t> values_;
};

void CheckReleaseInvariants(const RepublishRelease& release, int m) {
  for (size_t b = 0; b < release.num_buckets(); ++b) {
    const auto& signature = release.bucket_signature[b];
    ASSERT_EQ(static_cast<int>(signature.size()), m);
    EXPECT_TRUE(std::is_sorted(signature.begin(), signature.end()));
    EXPECT_EQ(std::set<int32_t>(signature.begin(), signature.end()).size(),
              signature.size());
    // Members carry signature values, at most one member per value;
    // counterfeits fill the rest.
    std::set<int32_t> used;
    for (size_t i = 0; i < release.bucket_owners[b].size(); ++i) {
      const int32_t v = release.bucket_values[b][i];
      EXPECT_TRUE(std::binary_search(signature.begin(), signature.end(), v));
      EXPECT_TRUE(used.insert(v).second) << "duplicate value in bucket";
    }
    size_t slots = release.bucket_owners[b].size();
    for (const auto& [value, count] : release.counterfeits[b]) {
      EXPECT_TRUE(std::binary_search(signature.begin(), signature.end(),
                                     value));
      EXPECT_FALSE(used.count(value))
          << "counterfeit duplicates a real member's value";
      slots += static_cast<size_t>(count);
    }
    // Every signature value is represented (really or counterfeit).
    EXPECT_EQ(slots, signature.size());
  }
}

TEST(MInvarianceTest, FirstReleaseBucketsAreMDiverse) {
  Population pop(20, 1);
  pop.Insert(500);
  MInvariantRepublisher republisher(4, 20, 2);
  RepublishRelease release =
      republisher.PublishNext(pop.Snapshot()).ValueOrDie();
  CheckReleaseInvariants(release, 4);
  EXPECT_EQ(release.TotalCounterfeits(), 0u);  // fresh cohorts never pad
  // Nearly everyone published (deferral only for the tail).
  size_t published = 0;
  for (const auto& owners : release.bucket_owners) {
    published += owners.size();
  }
  EXPECT_GE(published + release.deferred.size(), 500u);
  EXPECT_LT(release.deferred.size(), 40u);
}

TEST(MInvarianceTest, SignaturesAreInvariantAcrossReleases) {
  Population pop(15, 3);
  pop.Insert(400);
  MInvariantRepublisher republisher(3, 15, 4);
  std::vector<RepublishRelease> releases;
  releases.push_back(republisher.PublishNext(pop.Snapshot()).ValueOrDie());

  for (int round = 0; round < 4; ++round) {
    pop.Churn(0.2);
    pop.Insert(80);
    releases.push_back(republisher.PublishNext(pop.Snapshot()).ValueOrDie());
    CheckReleaseInvariants(releases.back(), 3);
  }

  // Every owner's bucket signature matches their recorded signature in
  // every release they appear in.
  for (const RepublishRelease& release : releases) {
    for (size_t b = 0; b < release.num_buckets(); ++b) {
      for (int64_t owner : release.bucket_owners[b]) {
        EXPECT_EQ(release.bucket_signature[b],
                  republisher.SignatureOf(owner));
      }
    }
  }
}

TEST(MInvarianceTest, IntersectionAttackKeepsMCandidates) {
  Population pop(15, 5);
  pop.Insert(600);
  const int m = 3;
  MInvariantRepublisher republisher(m, 15, 6);
  std::vector<RepublishRelease> releases;
  releases.push_back(republisher.PublishNext(pop.Snapshot()).ValueOrDie());
  for (int round = 0; round < 3; ++round) {
    pop.Churn(0.3);
    pop.Insert(100);
    releases.push_back(republisher.PublishNext(pop.Snapshot()).ValueOrDie());
  }
  std::vector<const RepublishRelease*> pointers;
  for (const auto& r : releases) pointers.push_back(&r);

  // Every owner that was ever published keeps all m candidates.
  size_t attacked = 0;
  for (int64_t owner = 0; owner < 600; ++owner) {
    std::vector<int32_t> candidates = IntersectionAttack(pointers, owner);
    if (candidates.empty()) continue;  // never published
    ++attacked;
    EXPECT_EQ(static_cast<int>(candidates.size()), m) << "owner " << owner;
  }
  EXPECT_GT(attacked, 400u);
}

TEST(MInvarianceTest, NaiveRepublicationLeaksUnderIntersection) {
  // Naive = fresh, history-free bucketization per round: intersections
  // shrink candidate sets, often to a single value.
  Population pop(15, 7);
  pop.Insert(600);
  const int m = 3;
  std::vector<RepublishRelease> releases;
  for (int round = 0; round < 4; ++round) {
    MInvariantRepublisher fresh(m, 15, 100 + round);  // no shared history
    releases.push_back(fresh.PublishNext(pop.Snapshot()).ValueOrDie());
    pop.Churn(0.25);
    pop.Insert(60);
  }
  std::vector<const RepublishRelease*> pointers;
  for (const auto& r : releases) pointers.push_back(&r);

  size_t shrunk = 0, certain = 0, attacked = 0;
  for (int64_t owner = 0; owner < 600; ++owner) {
    std::vector<int32_t> candidates = IntersectionAttack(pointers, owner);
    if (candidates.empty()) continue;
    ++attacked;
    if (static_cast<int>(candidates.size()) < m) ++shrunk;
    if (candidates.size() == 1) ++certain;
  }
  ASSERT_GT(attacked, 300u);
  // The intersection attack must bite for a large share of owners, with
  // certain disclosure for many.
  EXPECT_GT(shrunk, attacked / 2);
  EXPECT_GT(certain, attacked / 10);
}

TEST(MInvarianceTest, CounterfeitsAppearAfterSkewedDeletions) {
  // Start balanced, then delete every owner with value 0: returning
  // buckets must pad value 0 with counterfeits to keep signatures.
  std::vector<std::pair<int64_t, int32_t>> snapshot;
  for (int64_t i = 0; i < 100; ++i) {
    snapshot.push_back({i, static_cast<int32_t>(i % 4)});
  }
  MInvariantRepublisher republisher(2, 4, 8);
  RepublishRelease first = republisher.PublishNext(snapshot).ValueOrDie();
  CheckReleaseInvariants(first, 2);

  std::vector<std::pair<int64_t, int32_t>> survivors;
  for (const auto& [owner, value] : snapshot) {
    if (value != 0) survivors.push_back({owner, value});
  }
  RepublishRelease second = republisher.PublishNext(survivors).ValueOrDie();
  CheckReleaseInvariants(second, 2);
  EXPECT_GT(second.TotalCounterfeits(), 0u);
}

TEST(MInvarianceTest, RejectsInconsistentSnapshots) {
  MInvariantRepublisher republisher(2, 4, 9);
  EXPECT_TRUE(republisher.PublishNext({{1, 0}, {1, 1}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(republisher.PublishNext({{1, 9}}).status().IsOutOfRange());
  ASSERT_TRUE(republisher.PublishNext({{1, 0}, {2, 1}}).ok());
  EXPECT_TRUE(republisher.PublishNext({{1, 2}, {2, 1}})
                  .status()
                  .IsInvalidArgument());  // owner 1 changed value
}

TEST(MInvarianceTest, ReturningOwnerAfterAbsenceKeepsSignature) {
  MInvariantRepublisher republisher(2, 6, 10);
  // Round 1: owners 0..3.
  auto r1 = republisher
                .PublishNext({{0, 0}, {1, 1}, {2, 2}, {3, 3}})
                .ValueOrDie();
  const std::vector<int32_t> sig0 = republisher.SignatureOf(0);
  ASSERT_EQ(sig0.size(), 2u);
  // Round 2: owner 0 absent.
  ASSERT_TRUE(republisher.PublishNext({{1, 1}, {2, 2}, {3, 3}}).ok());
  // Round 3: owner 0 returns — same signature.
  auto r3 = republisher
                .PublishNext({{0, 0}, {1, 1}, {2, 2}, {3, 3}})
                .ValueOrDie();
  EXPECT_EQ(republisher.SignatureOf(0), sig0);
  bool found = false;
  for (size_t b = 0; b < r3.num_buckets(); ++b) {
    const auto& owners = r3.bucket_owners[b];
    if (std::find(owners.begin(), owners.end(), 0) != owners.end()) {
      EXPECT_EQ(r3.bucket_signature[b], sig0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pgpub
