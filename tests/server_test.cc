/// \file server_test.cc
/// pgpubd serving-core tests (DESIGN.md §12): fail-closed registry
/// lookup, admission control and quotas, deadline sweeps on a manual
/// clock, EDF scheduling, drain completeness, circuit-breaker
/// transitions (unit, with a fake clock, and end-to-end through a tenant
/// whose engine is broken by a failpoint), response-byte determinism
/// across submission order and engine thread count, and the text
/// control endpoint — both HandleCommand directly and over a real TCP
/// socket.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "datagen/clinic.h"
#include "server/circuit_breaker.h"
#include "server/clock.h"
#include "server/health_endpoint.h"
#include "server/server_core.h"
#include "server/tenant_registry.h"

namespace pgpub {
namespace {

using server::CircuitBreaker;
using server::CircuitBreakerOptions;
using server::HealthEndpoint;
using server::kNanosPerMilli;
using server::ManualClock;
using server::ServerClock;
using server::ServerCore;
using server::ServerOptions;
using server::ServerRequest;
using server::ServerResponse;
using server::TenantOptions;
using server::TenantRegistry;

// ------------------------------------------------------------- helpers

/// Thread-safe response sink with blocking waits.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServerResponse> responses;

  server::ResponseCallback Cb() {
    return [this](ServerResponse r) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(r));
      cv.notify_all();
    };
  }
  void WaitFor(size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() >= n; });
  }
  size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return responses.size();
  }
  ServerResponse at(size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    return responses[i];
  }
};

struct TenantSpec {
  std::string key;
  uint64_t seed = 1;
  TenantOptions options;
};

std::unique_ptr<TenantRegistry> MakeRegistry(
    const ServerClock* clock, const std::vector<TenantSpec>& specs) {
  auto registry = std::make_unique<TenantRegistry>(clock);
  for (const TenantSpec& spec : specs) {
    CensusDataset data = GenerateClinic(400, spec.seed).ValueOrDie();
    TenantOptions options = spec.options;
    if (options.engine.num_threads == 0) options.engine.num_threads = 1;
    Status added =
        registry->AddTenant(spec.key, std::move(data.table),
                            std::move(data.taxonomies), std::move(options));
    EXPECT_TRUE(added.ok()) << added.ToString();
  }
  return registry;
}

ServerRequest Req(const std::string& tenant, uint64_t stream, int k = 4,
                  double p = 0.5, uint64_t deadline_nanos = 0) {
  ServerRequest request;
  request.tenant = tenant;
  request.stream_id = stream;
  request.publish.options.k = k;
  request.publish.options.p = p;
  request.deadline_nanos = deadline_nanos;
  return request;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisableAll(); }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

// ----------------------------------------------------- registry contract

TEST_F(ServerTest, RegistryLookupFailsClosedOnUnknownTenant) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  EXPECT_TRUE(registry->Lookup("alpha").ok());
  Result<server::Tenant*> missing = registry->Lookup("beta");
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
}

TEST_F(ServerTest, RegistryRejectsDuplicateKeys) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  CensusDataset data = GenerateClinic(400, 9).ValueOrDie();
  Status dup = registry->AddTenant("alpha", std::move(data.table),
                                   std::move(data.taxonomies));
  EXPECT_TRUE(dup.IsAlreadyExists()) << dup.ToString();
  EXPECT_EQ(registry->size(), 1u);
}

TEST_F(ServerTest, RegistryValidatesTenantOptionsBeforeHosting) {
  TenantRegistry registry(nullptr);
  CensusDataset data = GenerateClinic(400, 9).ValueOrDie();
  TenantOptions options;
  options.breaker.failure_threshold = 0;  // invalid
  Status st = registry.AddTenant("bad", std::move(data.table),
                                 std::move(data.taxonomies), options);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_EQ(registry.size(), 0u);  // fail-closed: no half-registered tenant
}

TEST_F(ServerTest, SubmitToUnknownTenantIsNotFound) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  Collector col;
  Status st = core.Submit(Req("ghost", 1), col.Cb());
  EXPECT_TRUE(st.IsNotFound()) << st.ToString();
  core.Shutdown();
  EXPECT_EQ(col.size(), 0u);  // rejected => callback never runs
  EXPECT_EQ(core.stats().rejected_unknown_tenant, 1u);
}

// -------------------------------------------------------- admission control

TEST_F(ServerTest, OverloadRejectsWithResourceExhaustedAndNothingVanishes) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}, {"beta", 2, {}}});
  ServerOptions options;
  options.queue_capacity = 2;
  ServerCore core(registry.get(), options);
  ASSERT_TRUE(core.Start().ok());

  Collector col;
  const int total = 200;
  int admitted = 0;
  int rejected_full = 0;
  for (int i = 0; i < total; ++i) {
    Status st =
        core.Submit(Req(i % 2 == 0 ? "alpha" : "beta", 100 + i), col.Cb());
    if (st.ok()) {
      ++admitted;
    } else {
      ASSERT_TRUE(st.IsResourceExhausted()) << st.ToString();
      ++rejected_full;
    }
  }
  core.Shutdown();

  // The tiny queue cannot absorb 200 instant submissions.
  EXPECT_GT(rejected_full, 0);
  EXPECT_EQ(admitted + rejected_full, total);
  // Exactly-once completeness: every admitted request was answered.
  EXPECT_EQ(col.size(), static_cast<size_t>(admitted));
  const ServerCore::Stats stats = core.stats();
  EXPECT_EQ(stats.admitted, static_cast<uint64_t>(admitted));
  EXPECT_EQ(stats.rejected_full, static_cast<uint64_t>(rejected_full));
  EXPECT_EQ(stats.completed + stats.failed + stats.rejected_deadline,
            stats.admitted);
}

TEST_F(ServerTest, TenantQuotaRejectsWithoutStarvingOthers) {
  TenantSpec limited{"alpha", 1, {}};
  limited.options.max_queued = 1;
  auto registry = MakeRegistry(nullptr, {limited, {"beta", 2, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());

  Collector col;
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_done = false;
  Status quota_status = Status::OK();
  Status beta_status = Status::OK();
  // The gate callback runs on the dispatcher thread, so everything it
  // submits stays queued until it returns — deterministic queue state.
  Status blocker = core.Submit(Req("alpha", 1), [&](ServerResponse) {
    (void)core.Submit(Req("alpha", 2), col.Cb());      // fills the quota
    quota_status = core.Submit(Req("alpha", 3), col.Cb());  // over quota
    beta_status = core.Submit(Req("beta", 4), col.Cb());    // other tenant
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_done = true;
    gate_cv.notify_one();
  });
  ASSERT_TRUE(blocker.ok());
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_done; });
  }
  core.Shutdown();

  EXPECT_TRUE(quota_status.IsResourceExhausted())
      << quota_status.ToString();
  EXPECT_TRUE(beta_status.ok()) << beta_status.ToString();
  EXPECT_EQ(core.stats().rejected_quota, 1u);
  EXPECT_EQ(col.size(), 2u);  // alpha#2 and beta#4 both served
}

TEST_F(ServerTest, SubmitAfterShutdownIsUnavailable) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  core.Shutdown();
  Collector col;
  Status st = core.Submit(Req("alpha", 1), col.Cb());
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_EQ(core.stats().rejected_draining, 1u);
}

// ------------------------------------------------------------- deadlines

TEST_F(ServerTest, ExpiredDeadlineIsRejectedAtAdmission) {
  ManualClock clock(1000 * kNanosPerMilli);
  auto registry = MakeRegistry(&clock, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{}, &clock);
  ASSERT_TRUE(core.Start().ok());
  Collector col;
  Status st = core.Submit(
      Req("alpha", 1, 4, 0.5, /*deadline=*/500 * kNanosPerMilli), col.Cb());
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  core.Shutdown();
  EXPECT_EQ(col.size(), 0u);
  EXPECT_EQ(core.stats().rejected_deadline, 1u);
}

TEST_F(ServerTest, QueuedRequestIsSweptWhenDeadlinePasses) {
  ManualClock clock(1000 * kNanosPerMilli);
  auto registry = MakeRegistry(&clock, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{}, &clock);
  ASSERT_TRUE(core.Start().ok());

  Collector col;
  // From the dispatcher thread: enqueue a request with a 5ms budget,
  // then advance the clock past it before the dispatcher can dequeue.
  Status blocker = core.Submit(Req("alpha", 1), [&](ServerResponse) {
    const uint64_t deadline = clock.NowNanos() + 5 * kNanosPerMilli;
    Status st = core.Submit(Req("alpha", 2, 4, 0.5, deadline), col.Cb());
    EXPECT_TRUE(st.ok()) << st.ToString();
    clock.AdvanceMillis(10);
  });
  ASSERT_TRUE(blocker.ok());
  col.WaitFor(1);
  core.Shutdown();

  ASSERT_EQ(col.size(), 1u);
  const ServerResponse swept = col.at(0);
  EXPECT_TRUE(swept.status.IsDeadlineExceeded()) << swept.status.ToString();
  EXPECT_EQ(swept.digest, 0u);          // no table bytes ride along
  EXPECT_EQ(swept.publish_ms, 0.0);     // swept before any publish work
  EXPECT_GE(core.stats().rejected_deadline, 1u);
}

TEST_F(ServerTest, StrictestDeadlineIsServedFirst) {
  ManualClock clock(1000 * kNanosPerMilli);
  auto registry = MakeRegistry(&clock, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{}, &clock);
  ASSERT_TRUE(core.Start().ok());

  const uint64_t now = clock.NowNanos();
  const uint64_t sec = 1000 * kNanosPerMilli;
  Collector col;
  // Enqueued from the dispatcher thread in the order loose, strict,
  // middle, none — one batch, so serving order is pure EDF.
  Status blocker = core.Submit(Req("alpha", 1), [&](ServerResponse) {
    EXPECT_TRUE(
        core.Submit(Req("alpha", 30, 4, 0.5, now + 300 * sec), col.Cb())
            .ok());
    EXPECT_TRUE(
        core.Submit(Req("alpha", 10, 4, 0.5, now + 100 * sec), col.Cb())
            .ok());
    EXPECT_TRUE(
        core.Submit(Req("alpha", 20, 4, 0.5, now + 200 * sec), col.Cb())
            .ok());
    EXPECT_TRUE(core.Submit(Req("alpha", 40), col.Cb()).ok());
  });
  ASSERT_TRUE(blocker.ok());
  col.WaitFor(4);
  core.Shutdown();

  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.at(0).stream_id, 10u);
  EXPECT_EQ(col.at(1).stream_id, 20u);
  EXPECT_EQ(col.at(2).stream_id, 30u);
  EXPECT_EQ(col.at(3).stream_id, 40u);  // no deadline sorts last
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(col.at(i).status.ok()) << col.at(i).status.ToString();
  }
}

// ----------------------------------------------------------------- drain

TEST_F(ServerTest, DrainFinishAnswersEveryQueuedRequest) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}, {"beta", 2, {}}});
  ServerOptions options;
  options.queue_capacity = 64;
  ServerCore core(registry.get(), options);
  ASSERT_TRUE(core.Start().ok());

  Collector col;
  int admitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (core.Submit(Req(i % 2 == 0 ? "alpha" : "beta", 200 + i), col.Cb())
            .ok()) {
      ++admitted;
    }
  }
  core.Shutdown();
  EXPECT_EQ(col.size(), static_cast<size_t>(admitted));
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_TRUE(col.at(i).status.ok()) << col.at(i).status.ToString();
    EXPECT_NE(col.at(i).digest, 0u);
  }
}

TEST_F(ServerTest, DrainRejectStillAnswersEveryQueuedRequest) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerOptions options;
  options.queue_capacity = 64;
  options.drain_policy = ServerOptions::DrainPolicy::kReject;
  ServerCore core(registry.get(), options);
  ASSERT_TRUE(core.Start().ok());

  Collector col;
  int admitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (core.Submit(Req("alpha", 300 + i), col.Cb()).ok()) ++admitted;
  }
  core.Shutdown();  // immediate drain; most requests still queued

  EXPECT_EQ(col.size(), static_cast<size_t>(admitted));
  for (size_t i = 0; i < col.size(); ++i) {
    const Status& st = col.at(i).status;
    // Served before the drain began, or rejected by the drain policy —
    // never silently dropped.
    EXPECT_TRUE(st.ok() || st.IsUnavailable()) << st.ToString();
  }
}

// ----------------------------------------------------------- determinism

/// Serves the same six-request workload and returns stream -> digest.
std::map<uint64_t, uint64_t> ServeWorkload(
    int engine_threads, const std::vector<uint64_t>& order) {
  TenantSpec alpha{"alpha", 1, {}};
  TenantSpec beta{"beta", 2, {}};
  alpha.options.engine.num_threads = engine_threads;
  beta.options.engine.num_threads = engine_threads;
  auto registry = MakeRegistry(nullptr, {alpha, beta});
  ServerOptions options;
  options.queue_capacity = 64;
  options.batch_seed = 0xfeed;
  ServerCore core(registry.get(), options);
  EXPECT_TRUE(core.Start().ok());
  Collector col;
  for (const uint64_t stream : order) {
    // Tenant and options are pure functions of the stream id.
    Status st = core.Submit(Req(stream % 2 == 0 ? "alpha" : "beta", stream,
                                stream % 3 == 0 ? 2 : 4,
                                stream % 5 == 0 ? 0.4 : 0.7),
                            col.Cb());
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  core.Shutdown();
  std::map<uint64_t, uint64_t> digests;
  for (size_t i = 0; i < col.size(); ++i) {
    ServerResponse r = col.at(i);
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    digests[r.stream_id] = r.digest;
  }
  return digests;
}

TEST_F(ServerTest, ResponseBytesIndependentOfSubmitOrderAndThreadCount) {
  const std::vector<uint64_t> forward = {3, 4, 5, 6, 9, 10};
  const std::vector<uint64_t> reversed = {10, 9, 6, 5, 4, 3};
  const std::map<uint64_t, uint64_t> base = ServeWorkload(1, forward);
  ASSERT_EQ(base.size(), forward.size());
  // Same workload, reversed arrival order: byte-identical responses.
  EXPECT_EQ(ServeWorkload(1, reversed), base);
  // Same workload, 4 engine worker threads: byte-identical responses.
  EXPECT_EQ(ServeWorkload(4, forward), base);
}

// ------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndBackoffDoubles) {
  ManualClock clock(0);
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration_nanos = 100;
  options.backoff_multiplier = 2.0;
  options.max_open_duration_nanos = 350;
  ASSERT_TRUE(options.Validate().ok());
  CircuitBreaker breaker(options, &clock);

  // Interleaved success resets the consecutive count.
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();  // third consecutive
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.remaining_open_nanos(), 100u);

  // Window elapses: exactly one probe is let through.
  clock.AdvanceNanos(100);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // second caller waits for the probe

  // Failed probe reopens with a doubled window.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_window_nanos(), 200u);
  clock.AdvanceNanos(199);
  EXPECT_FALSE(breaker.Allow());
  clock.AdvanceNanos(1);
  ASSERT_TRUE(breaker.Allow());

  // Another failed probe: doubled again but capped at the maximum.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.open_window_nanos(), 350u);

  // A successful probe closes the breaker and forgives the backoff.
  clock.AdvanceNanos(350);
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.open_window_nanos(), 100u);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, SnapshotIsCoherentWithAccessors) {
  ManualClock clock(0);
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_duration_nanos = 100;
  ASSERT_TRUE(options.Validate().ok());
  CircuitBreaker breaker(options, &clock);

  CircuitBreaker::Snapshot snap = breaker.TakeSnapshot();
  EXPECT_EQ(snap.state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(snap.consecutive_failures, 0);
  EXPECT_EQ(snap.remaining_open_nanos, 0u);

  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  snap = breaker.TakeSnapshot();
  EXPECT_EQ(snap.state, CircuitBreaker::State::kClosed);
  EXPECT_EQ(snap.consecutive_failures, 1);

  breaker.RecordFailure();
  clock.AdvanceNanos(40);
  snap = breaker.TakeSnapshot();
  EXPECT_EQ(snap.state, CircuitBreaker::State::kOpen);
  EXPECT_EQ(snap.open_window_nanos, 100u);
  EXPECT_EQ(snap.remaining_open_nanos, 60u);
}

TEST(CircuitBreakerTest, ValidateRejectsDegeneratePolicies) {
  ManualClock clock(0);
  CircuitBreakerOptions options;
  options.failure_threshold = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.open_duration_nanos = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.backoff_multiplier = 0.5;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  options = {};
  options.max_open_duration_nanos = options.open_duration_nanos - 1;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST_F(ServerTest, BreakerFastFailsBrokenTenantOnly) {
  ManualClock clock(1000 * kNanosPerMilli);
  TenantSpec bad{"bad", 1, {}};
  bad.options.breaker.failure_threshold = 2;
  bad.options.engine.robust.max_attempts = 1;
  bad.options.engine.robust.allow_generalizer_fallback = false;
  auto registry = MakeRegistry(&clock, {bad, {"good", 2, {}}});
  ServerCore core(registry.get(), ServerOptions{}, &clock);
  ASSERT_TRUE(core.Start().ok());

  auto serve_one = [&](const std::string& tenant,
                       uint64_t stream) -> Status {
    Collector col;
    Status st = core.Submit(Req(tenant, stream), col.Cb());
    if (!st.ok()) return st;
    col.WaitFor(1);
    return col.at(0).status;
  };

  // Break the bad tenant's engine: every publish attempt faults.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Enable(failpoints::kPublishPerturb, "always")
                  .ok());
  EXPECT_TRUE(serve_one("bad", 1).IsInternal());
  EXPECT_TRUE(serve_one("bad", 2).IsInternal());  // threshold reached
  FailpointRegistry::Global().DisableAll();

  // Breaker is now open: fast-fail without touching the (repaired)
  // engine, while the other tenant is unaffected.
  Status fast_failed = serve_one("bad", 3);
  EXPECT_TRUE(fast_failed.IsUnavailable()) << fast_failed.ToString();
  EXPECT_GE(core.stats().breaker_open, 1u);
  EXPECT_TRUE(serve_one("good", 4).ok());

  // After the open window a probe is let through; it succeeds and the
  // breaker closes again.
  clock.AdvanceNanos(bad.options.breaker.open_duration_nanos);
  EXPECT_TRUE(serve_one("bad", 5).ok());
  EXPECT_TRUE(serve_one("bad", 6).ok());
  core.Shutdown();
}

// -------------------------------------------------------- health endpoint

/// Minimal blocking client for the endpoint protocol.
std::string SendCommand(int port, const std::string& line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char buf[512];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST_F(ServerTest, HealthEndpointHandlesCommands) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  HealthEndpoint endpoint(&core);

  EXPECT_NE(endpoint.HandleCommand("HEALTH").find("ok draining=0"),
            std::string::npos);
  EXPECT_NE(endpoint.HandleCommand("STATS").find("server.admitted 0"),
            std::string::npos);
  EXPECT_NE(endpoint.HandleCommand("TENANTS")
                .find("tenant alpha queued=0 served=0 failed=0 "
                      "breaker=closed"),
            std::string::npos);
  const std::string published = endpoint.HandleCommand("PUBLISH alpha 7");
  EXPECT_EQ(published.find("ok tenant=alpha stream=7 digest="), 0u)
      << published;
  // Counter values are process-global (other tests may have bumped
  // them), so assert presence rather than an exact count.
  EXPECT_NE(endpoint.HandleCommand("METRICS")
                .find("counter server.completed "),
            std::string::npos);
  EXPECT_EQ(endpoint.HandleCommand("PUBLISH ghost 1")
                .find("err code=NotFound"),
            0u);
  EXPECT_EQ(endpoint.HandleCommand("NOPE").find("err code=InvalidArgument"),
            0u);
  EXPECT_EQ(endpoint.HandleCommand("PUBLISH alpha notanumber")
                .find("err code=InvalidArgument"),
            0u);
  const std::string burst = endpoint.HandleCommand("BURST alpha 3 100");
  EXPECT_EQ(burst.find("admitted="), 0u) << burst;
  core.Shutdown();
}

TEST_F(ServerTest, SnapshotHealthReadsBothFieldsAtOnce) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  ServerCore::HealthSnapshot health = core.SnapshotHealth();
  EXPECT_FALSE(health.draining);
  EXPECT_EQ(health.queued, 0u);
  core.Shutdown();
  health = core.SnapshotHealth();
  EXPECT_TRUE(health.draining);
  EXPECT_EQ(health.queued, 0u);
}

TEST_F(ServerTest, HealthEndpointServesOverTcp) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  HealthEndpoint endpoint(&core);
  ASSERT_TRUE(endpoint.Start(0).ok());
  ASSERT_GT(endpoint.bound_port(), 0);

  EXPECT_EQ(SendCommand(endpoint.bound_port(), "HEALTH\n")
                .find("ok draining=0"),
            0u);
  const std::string published =
      SendCommand(endpoint.bound_port(), "PUBLISH alpha 42\n");
  EXPECT_EQ(published.find("ok tenant=alpha stream=42"), 0u) << published;
  const std::string stats = SendCommand(endpoint.bound_port(), "STATS\n");
  EXPECT_NE(stats.find("server.completed 1"), std::string::npos) << stats;

  endpoint.Stop();
  core.Shutdown();
  // The port is released: a second endpoint can bind and serve again.
  HealthEndpoint again(&core);
  ASSERT_TRUE(again.Start(0).ok());
  EXPECT_EQ(SendCommand(again.bound_port(), "HEALTH\n")
                .find("ok draining=1"),
            0u);
  again.Stop();
}

// --------------------------------------------- server options validation

TEST_F(ServerTest, ServerOptionsValidateRejectsZeroCapacity) {
  ServerOptions options;
  options.queue_capacity = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}});
  ServerCore core(registry.get(), options);
  EXPECT_TRUE(core.Start().IsInvalidArgument());
}

TEST_F(ServerTest, ServerOptionsValidateRejectsNegativeSlowBudget) {
  ServerOptions options;
  options.slow_request_budget_ms = -1.0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

// --------------------------------------------- Prometheus exposition

TEST_F(ServerTest, PromVerbServesPerTenantLabeledMetrics) {
  auto registry = MakeRegistry(nullptr, {{"alpha", 1, {}}, {"beta", 2, {}}});
  ServerCore core(registry.get(), ServerOptions{});
  ASSERT_TRUE(core.Start().ok());
  HealthEndpoint endpoint(&core);

  EXPECT_EQ(endpoint.HandleCommand("PUBLISH alpha 3").find("ok tenant=alpha"),
            0u);
  EXPECT_EQ(endpoint.HandleCommand("PUBLISH beta 5").find("ok tenant=beta"),
            0u);

  const std::string prom = endpoint.HandleCommand("PROM");
  // The exposition carries one histogram family with per-tenant labels
  // (one # TYPE line, one series per tenant) plus the request counters.
  EXPECT_NE(prom.find("# TYPE server_latency_us histogram"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("server_latency_us_count{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("server_latency_us_count{tenant=\"beta\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("server_publish_us_count{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("server_requests{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("server_failures{tenant=\"beta\"}"),
            std::string::npos);
  core.Shutdown();
}

}  // namespace
}  // namespace pgpub
