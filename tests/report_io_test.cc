/// \file report_io_test.cc
/// PublishReport JSON (de)serialization: lossless round-trips (including
/// seeds beyond int64 range and non-OK statuses), file output, and strict
/// rejection of malformed documents.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report_io.h"
#include "core/robust_publisher.h"
#include "obs/json.h"

namespace pgpub {
namespace {

PublishReport MakeReport() {
  PublishReport report;
  PublishReport::Attempt first;
  first.number = 1;
  first.generalizer = PgOptions::Generalizer::kTds;
  first.seed = 2008;
  first.outcome = Status::Internal("injected failure: publish.perturb");
  first.audit = Status::OK();
  first.audited = false;
  first.elapsed_ms = 0.75;
  report.attempts.push_back(first);

  PublishReport::Attempt second;
  second.number = 2;
  second.generalizer = PgOptions::Generalizer::kIncognito;
  // Above int64 range: must survive via the uint64 JSON kind.
  second.seed = 18446744073709551615ull;
  second.outcome = Status::OK();
  second.audit = Status::OK();
  second.audited = true;
  second.elapsed_ms = 12.5;
  report.attempts.push_back(second);

  report.fallback_used = true;
  report.audit_clean = true;
  report.final_status = Status::OK();
  report.total_ms = 13.25;
  return report;
}

void ExpectStatusEq(const Status& a, const Status& b) {
  EXPECT_EQ(a.code(), b.code());
  EXPECT_EQ(a.message(), b.message());
}

void ExpectReportEq(const PublishReport& a, const PublishReport& b) {
  ASSERT_EQ(a.attempts.size(), b.attempts.size());
  for (size_t i = 0; i < a.attempts.size(); ++i) {
    SCOPED_TRACE("attempt " + std::to_string(i));
    EXPECT_EQ(a.attempts[i].number, b.attempts[i].number);
    EXPECT_EQ(a.attempts[i].generalizer, b.attempts[i].generalizer);
    EXPECT_EQ(a.attempts[i].seed, b.attempts[i].seed);
    ExpectStatusEq(a.attempts[i].outcome, b.attempts[i].outcome);
    ExpectStatusEq(a.attempts[i].audit, b.attempts[i].audit);
    EXPECT_EQ(a.attempts[i].audited, b.attempts[i].audited);
    EXPECT_DOUBLE_EQ(a.attempts[i].elapsed_ms, b.attempts[i].elapsed_ms);
  }
  EXPECT_EQ(a.fallback_used, b.fallback_used);
  EXPECT_EQ(a.audit_clean, b.audit_clean);
  ExpectStatusEq(a.final_status, b.final_status);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
}

TEST(ReportIoTest, RoundTripIsLossless) {
  const PublishReport report = MakeReport();
  const std::string text = PublishReportToJsonString(report);
  const auto parsed = PublishReportFromJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectReportEq(report, *parsed);
  // Serializing the parsed report reproduces the text byte for byte.
  EXPECT_EQ(PublishReportToJsonString(*parsed), text);
}

TEST(ReportIoTest, EmptyReportRoundTrips) {
  const PublishReport report;  // zero attempts, default statuses
  const auto parsed = PublishReportFromJson(PublishReportToJsonString(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectReportEq(report, *parsed);
}

TEST(ReportIoTest, JsonDocumentShape) {
  const obs::JsonValue doc = PublishReportToJson(MakeReport());
  EXPECT_EQ(doc.Find("schema_version")->AsInt64().ValueOrDie(), 1);
  ASSERT_EQ(doc.Find("attempts")->size(), 2u);
  const obs::JsonValue* second = doc.Find("attempts")->At(1).ValueOrDie();
  EXPECT_EQ(second->Find("generalizer")->AsString().ValueOrDie(),
            "incognito");
  EXPECT_EQ(second->Find("seed")->AsUint64().ValueOrDie(),
            18446744073709551615ull);
  const obs::JsonValue* outcome =
      doc.Find("attempts")->At(0).ValueOrDie()->Find("outcome");
  EXPECT_EQ(outcome->Find("code")->AsString().ValueOrDie(), "Internal");
  EXPECT_EQ(outcome->Find("message")->AsString().ValueOrDie(),
            "injected failure: publish.perturb");
}

TEST(ReportIoTest, WriteCreatesReadableFile) {
  const std::string path = testing::TempDir() + "/report_io_test.json";
  const PublishReport report = MakeReport();
  ASSERT_TRUE(WritePublishReportJson(report, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = PublishReportFromJson(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectReportEq(report, *parsed);
  std::remove(path.c_str());
}

TEST(ReportIoTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WritePublishReportJson(PublishReport(), "/nonexistent-dir/x.json")
          .ok());
}

TEST(ReportIoTest, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(PublishReportFromJson("not json").ok());
  // Wrong schema version.
  EXPECT_FALSE(PublishReportFromJson(
                   "{\"schema_version\":2,\"attempts\":[],"
                   "\"fallback_used\":false,\"audit_clean\":false,"
                   "\"final_status\":{\"code\":\"OK\",\"message\":\"\"},"
                   "\"total_ms\":0.0}")
                   .ok());
  // Missing members.
  EXPECT_FALSE(PublishReportFromJson("{\"schema_version\":1}").ok());
  // Unknown generalizer name.
  EXPECT_FALSE(PublishReportFromJson(
                   "{\"schema_version\":1,\"attempts\":[{\"number\":1,"
                   "\"generalizer\":\"mondrian\",\"seed\":1,"
                   "\"outcome\":{\"code\":\"OK\",\"message\":\"\"},"
                   "\"audit\":{\"code\":\"OK\",\"message\":\"\"},"
                   "\"audited\":true,\"elapsed_ms\":0.0}],"
                   "\"fallback_used\":false,\"audit_clean\":true,"
                   "\"final_status\":{\"code\":\"OK\",\"message\":\"\"},"
                   "\"total_ms\":0.0}")
                   .ok());
  // Unknown status code.
  EXPECT_FALSE(PublishReportFromJson(
                   "{\"schema_version\":1,\"attempts\":[],"
                   "\"fallback_used\":false,\"audit_clean\":false,"
                   "\"final_status\":{\"code\":\"Gone\",\"message\":\"\"},"
                   "\"total_ms\":0.0}")
                   .ok());
}

}  // namespace
}  // namespace pgpub
