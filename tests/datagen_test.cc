#include <gtest/gtest.h>

#include <cmath>

#include "datagen/census.h"
#include "datagen/hospital.h"
#include "datagen/sal.h"
#include "mining/decision_tree.h"
#include "mining/evaluate.h"

namespace pgpub {
namespace {

// ------------------------------------------------------------------ Census

TEST(CensusTest, SchemaMatchesPaper) {
  CensusDataset census = GenerateCensus(1000, 1).ValueOrDie();
  const Schema& schema = census.table.schema();
  ASSERT_EQ(schema.num_attributes(), 9);
  EXPECT_EQ(schema.attribute(CensusColumns::kAge).name, "Age");
  EXPECT_EQ(schema.attribute(CensusColumns::kIncome).name, "Income");
  EXPECT_EQ(*schema.SensitiveIndex(), CensusColumns::kIncome);
  EXPECT_EQ(schema.QiIndices().size(), 8u);
  // |U^s| = 50 as in Section VII-A.
  EXPECT_EQ(census.table.domain(CensusColumns::kIncome).size(), 50);
  EXPECT_EQ(census.table.domain(CensusColumns::kGender).size(), 2);
  EXPECT_EQ(census.table.domain(CensusColumns::kEducation).size(), 17);
  EXPECT_EQ(census.table.domain(CensusColumns::kBirthplace).size(), 57);
  EXPECT_EQ(census.table.domain(CensusColumns::kOccupation).size(), 50);
  EXPECT_EQ(census.table.domain(CensusColumns::kRace).size(), 9);
  EXPECT_EQ(census.table.domain(CensusColumns::kWorkclass).size(), 9);
  EXPECT_EQ(census.table.domain(CensusColumns::kMarital).size(), 6);
}

TEST(CensusTest, DeterministicForSeed) {
  CensusDataset a = GenerateCensus(2000, 7).ValueOrDie();
  CensusDataset b = GenerateCensus(2000, 7).ValueOrDie();
  for (int attr = 0; attr < 9; ++attr) {
    EXPECT_EQ(a.table.column(attr), b.table.column(attr));
  }
  CensusDataset c = GenerateCensus(2000, 8).ValueOrDie();
  EXPECT_NE(a.table.column(CensusColumns::kIncome),
            c.table.column(CensusColumns::kIncome));
}

TEST(CensusTest, TaxonomiesMatchDomains) {
  CensusDataset census = GenerateCensus(100, 2).ValueOrDie();
  const std::vector<int> qi = census.table.schema().QiIndices();
  ASSERT_EQ(census.taxonomies.size(), qi.size());
  ASSERT_EQ(census.nominal.size(), qi.size());
  for (size_t i = 0; i < qi.size(); ++i) {
    EXPECT_EQ(census.taxonomies[i].domain_size(),
              census.table.domain(qi[i]).size())
        << census.table.schema().attribute(qi[i]).name;
  }
}

TEST(CensusTest, IncomeCorrelatesWithOccupationTier) {
  CensusDataset census = GenerateCensus(30000, 3).ValueOrDie();
  // Mean income of the top tier must clearly exceed the bottom tier's.
  double low_sum = 0, high_sum = 0;
  size_t low_n = 0, high_n = 0;
  for (size_t r = 0; r < census.table.num_rows(); ++r) {
    const int32_t occ = census.table.value(r, CensusColumns::kOccupation);
    const int32_t income = census.table.value(r, CensusColumns::kIncome);
    if (occ < 5) {
      low_sum += income;
      ++low_n;
    } else if (occ >= 45) {
      high_sum += income;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 100u);
  ASSERT_GT(high_n, 100u);
  EXPECT_GT(high_sum / high_n, low_sum / low_n + 15.0);
}

TEST(CensusTest, IncomeIsLearnableByTrees) {
  // The substitution requirement (DESIGN.md §4): a decision tree on clean
  // data reaches optimistic-like accuracy.
  CensusDataset census = GenerateCensus(30000, 4).ValueOrDie();
  CategoryMap cats = CategoryMap::PaperIncome(2);
  std::vector<int32_t> truth =
      cats.Map(census.table.column(CensusColumns::kIncome));
  const std::vector<int> qi = census.table.schema().QiIndices();
  TreeOptions options;
  DecisionTree tree =
      DecisionTree::Train(
          TreeDataset::FromRaw(census.table, qi, truth, 2, census.nominal),
          options)
          .ValueOrDie();
  EvalResult eval = EvaluateTree(tree, census.table, qi, truth);
  EXPECT_LT(eval.error(), 0.15);
  EXPECT_LT(eval.error(), MajorityBaselineError(truth, 2) - 0.2);
}

TEST(CensusTest, ClassesAreReasonablyBalanced) {
  CensusDataset census = GenerateCensus(30000, 5).ValueOrDie();
  CategoryMap cats = CategoryMap::PaperIncome(2);
  std::vector<int64_t> hist(2, 0);
  for (int32_t v : census.table.column(CensusColumns::kIncome)) {
    hist[cats.CategoryOf(v)]++;
  }
  const double frac0 =
      hist[0] / static_cast<double>(census.table.num_rows());
  EXPECT_GT(frac0, 0.3);
  EXPECT_LT(frac0, 0.7);
}

TEST(CensusTest, RejectsZeroRows) {
  EXPECT_TRUE(GenerateCensus(0, 1).status().IsInvalidArgument());
}

// ---------------------------------------------------------------- Hospital

TEST(HospitalTest, TableIaContents) {
  HospitalDataset h = MakeHospitalDataset().ValueOrDie();
  ASSERT_EQ(h.table.num_rows(), 8u);
  ASSERT_EQ(h.owners.size(), 8u);
  EXPECT_EQ(h.owners[0], "Bob");
  EXPECT_EQ(h.table.ValueToString(0, HospitalColumns::kAge), "25");
  EXPECT_EQ(h.table.ValueToString(0, HospitalColumns::kGender), "M");
  EXPECT_EQ(h.table.ValueToString(0, HospitalColumns::kDisease),
            "bronchitis");
  EXPECT_EQ(h.owners[7], "Isaac");
  EXPECT_EQ(h.table.ValueToString(7, HospitalColumns::kDisease), "dementia");
  EXPECT_EQ(h.table.domain(HospitalColumns::kDisease).size(), 7);
}

TEST(HospitalTest, VoterListIncludesExtraneousEmily) {
  HospitalDataset h = MakeHospitalDataset().ValueOrDie();
  ASSERT_EQ(h.voter_list.size(), 9u);
  size_t extraneous = 0;
  bool found_emily = false;
  for (size_t i = 0; i < h.voter_list.size(); ++i) {
    const Individual& ind = h.voter_list.individual(i);
    if (ind.extraneous()) {
      ++extraneous;
      found_emily = ind.id == "Emily";
    }
  }
  EXPECT_EQ(extraneous, 1u);
  EXPECT_TRUE(found_emily);
  // Every microdata row is covered.
  for (uint32_t r = 0; r < 8; ++r) {
    EXPECT_GE(h.voter_list.IndividualOfRow(r), 0);
  }
}

TEST(HospitalTest, TaxonomiesMatchPaperBands) {
  HospitalDataset h = MakeHospitalDataset().ValueOrDie();
  // Age taxonomy: [21,40]/[41,60]/[61,80] as 20-year bands over codes.
  const Taxonomy& age = h.taxonomies[0];
  EXPECT_EQ(age.domain_size(), 60);
  auto cut = age.CutAtDepth(1);
  ASSERT_EQ(cut.size(), 3u);
  EXPECT_EQ(age.node(cut[0]).range, Interval(0, 19));
  // Zipcode bands match the paper's [11k,30k]/[31k,50k]/[51k,70k].
  const Taxonomy& zip = h.taxonomies[2];
  auto zcut = zip.CutAtDepth(1);
  ASSERT_EQ(zcut.size(), 3u);
  EXPECT_EQ(zip.node(zcut[0]).label, "[11k,30k]");
}

// ---------------------------------------------------- ExternalDatabase

TEST(SalTest, ShapeMatchesCensusAndIsThreadInvariant) {
  SalOptions options;
  options.num_rows = 5000;
  options.seed = 2008;
  options.num_threads = 1;
  const CensusDataset serial = GenerateSal(options).ValueOrDie();
  EXPECT_EQ(serial.table.num_rows(), 5000u);
  EXPECT_EQ(serial.table.num_attributes(), 9);
  EXPECT_EQ(serial.table.domain(CensusColumns::kIncome).size(), 50);
  EXPECT_EQ(serial.taxonomies.size(), 8u);

  // The table is a pure function of (num_rows, seed): thread count is
  // wall-clock only.
  options.num_threads = 4;
  const CensusDataset parallel = GenerateSal(options).ValueOrDie();
  for (int a = 0; a < serial.table.num_attributes(); ++a) {
    ASSERT_EQ(serial.table.column(a), parallel.table.column(a))
        << "attribute " << a;
  }
}

TEST(SalTest, RejectsZeroRows) {
  SalOptions options;
  options.num_rows = 0;
  EXPECT_FALSE(GenerateSal(options).ok());
}

TEST(ExternalDatabaseTest, FromMicrodataCoversAllRows) {
  CensusDataset census = GenerateCensus(500, 9).ValueOrDie();
  Rng rng(10);
  ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(census.table, 100, rng);
  EXPECT_EQ(edb.size(), 600u);
  size_t extraneous = 0;
  for (size_t i = 0; i < edb.size(); ++i) {
    if (edb.individual(i).extraneous()) ++extraneous;
  }
  EXPECT_EQ(extraneous, 100u);
  for (uint32_t r = 0; r < 500; ++r) {
    const int32_t idx = edb.IndividualOfRow(r);
    ASSERT_GE(idx, 0);
    const Individual& ind = edb.individual(idx);
    for (size_t i = 0; i < edb.qi_attrs().size(); ++i) {
      EXPECT_EQ(ind.qi_codes[i],
                census.table.value(r, edb.qi_attrs()[i]));
    }
  }
}

}  // namespace
}  // namespace pgpub
