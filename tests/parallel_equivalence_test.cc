/// The differential proof behind DESIGN.md §9: for every dataset × seed ×
/// generalizer, the published table, the PublishReport JSON, and every
/// guarantee number are byte-identical whether the pipeline runs with
/// num_threads 1 (legacy serial path), 2, or 8. Timing fields are the one
/// sanctioned difference and are zeroed before comparison.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "attack/adversaries.h"
#include "attack/external_db.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "common/parallel/thread_pool.h"
#include "core/report_io.h"
#include "core/robust_publisher.h"
#include "datagen/census.h"
#include "datagen/clinic.h"
#include "datagen/hospital.h"
#include "generalize/qi_groups.h"

namespace pgpub {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// One full RobustPublisher run at a given thread count.
struct RunOutput {
  PublishedTable table;
  std::string report_json;  ///< Timing-normalized.
};

/// Zeroes the wall-clock fields — the only legitimate run-to-run
/// difference — so the rest of the report must match byte-for-byte.
void NormalizeTimings(PublishReport* report) {
  report->total_ms = 0.0;
  for (PublishReport::Attempt& attempt : report->attempts) {
    attempt.elapsed_ms = 0.0;
  }
}

RunOutput PublishAt(const Table& microdata,
                    const std::vector<const Taxonomy*>& taxonomies,
                    PgOptions options, int num_threads) {
  options.num_threads = num_threads;
  RobustPublisher publisher(options);
  PublishReport report;
  Result<PublishedTable> published =
      publisher.Publish(microdata, taxonomies, &report);
  EXPECT_TRUE(published.ok()) << published.status().message();
  NormalizeTimings(&report);
  return RunOutput{std::move(*published), PublishReportToJsonString(report)};
}

/// Byte-level equality of everything a release publishes.
void ExpectIdenticalRelease(const RunOutput& base, const RunOutput& other,
                            int num_threads) {
  const PublishedTable& a = base.table;
  const PublishedTable& b = other.table;
  ASSERT_EQ(a.num_rows(), b.num_rows()) << "threads=" << num_threads;
  ASSERT_EQ(a.num_qi_attrs(), b.num_qi_attrs());
  EXPECT_EQ(a.retention_p(), b.retention_p());  // solved p must agree too
  EXPECT_EQ(a.k(), b.k());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.sensitive(r), b.sensitive(r))
        << "row " << r << " threads=" << num_threads;
    EXPECT_EQ(a.group_size(r), b.group_size(r)) << "row " << r;
    for (int i = 0; i < a.num_qi_attrs(); ++i) {
      EXPECT_EQ(a.qi_gen(r, i), b.qi_gen(r, i))
          << "row " << r << " attr " << i << " threads=" << num_threads;
    }
  }
  EXPECT_EQ(base.report_json, other.report_json) << "threads=" << num_threads;
}

void CheckPublishEquivalence(const Table& microdata,
                             const std::vector<const Taxonomy*>& taxonomies,
                             const PgOptions& options) {
  const RunOutput serial = PublishAt(microdata, taxonomies, options, 1);
  for (int threads : kThreadCounts) {
    if (threads == 1) continue;
    const RunOutput parallel =
        PublishAt(microdata, taxonomies, options, threads);
    ExpectIdenticalRelease(serial, parallel, threads);
  }
}

TEST(ParallelEquivalenceTest, CensusTdsAcrossSeedsAndThreadCounts) {
  CensusDataset census = GenerateCensus(3000, 11).ValueOrDie();
  for (uint64_t seed : {42u, 1337u}) {
    PgOptions options;
    options.k = 8;
    options.p = 0.3;
    options.seed = seed;
    CheckPublishEquivalence(census.table, census.TaxonomyPointers(), options);
  }
}

TEST(ParallelEquivalenceTest, ClinicTdsAcrossSeedsAndThreadCounts) {
  CensusDataset clinic = GenerateClinic(1200, 12).ValueOrDie();
  for (uint64_t seed : {42u, 7u}) {
    PgOptions options;
    options.k = 5;
    options.p = 0.4;
    options.seed = seed;
    CheckPublishEquivalence(clinic.table, clinic.TaxonomyPointers(), options);
  }
}

TEST(ParallelEquivalenceTest, HospitalRunningExampleAcrossThreadCounts) {
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.s = 0.5;
  options.p = 0.25;
  options.seed = 42;
  CheckPublishEquivalence(hospital.table, hospital.TaxonomyPointers(),
                          options);
}

TEST(ParallelEquivalenceTest, CensusIncognitoAcrossThreadCounts) {
  // Narrow 3-attribute schema so the full-domain lattice stays small —
  // the same construction as the publisher Incognito test.
  CensusDataset census = GenerateCensus(3000, 13).ValueOrDie();
  Schema schema;
  schema.AddAttribute(
      {"Age", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute({"Gender", AttributeType::kCategorical,
                       AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"Income", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {
      census.table.domain(CensusColumns::kAge),
      census.table.domain(CensusColumns::kGender),
      census.table.domain(CensusColumns::kIncome)};
  std::vector<std::vector<int32_t>> cols = {
      census.table.column(CensusColumns::kAge),
      census.table.column(CensusColumns::kGender),
      census.table.column(CensusColumns::kIncome)};
  Table narrow = Table::Create(schema, domains, std::move(cols)).ValueOrDie();
  const std::vector<const Taxonomy*> taxonomies = {
      &census.taxonomies[CensusColumns::kAge],
      &census.taxonomies[CensusColumns::kGender]};

  for (uint64_t seed : {42u, 2008u}) {
    PgOptions options;
    options.k = 10;
    options.p = 0.3;
    options.seed = seed;
    options.generalizer = PgOptions::Generalizer::kIncognito;
    CheckPublishEquivalence(narrow, taxonomies, options);
  }
}

TEST(ParallelEquivalenceTest, SolvedRetentionPathAcrossThreadCounts) {
  // The p-solving path (privacy target instead of a fixed p) must also be
  // schedule-invariant end to end.
  CensusDataset census = GenerateCensus(2000, 14).ValueOrDie();
  PgOptions options;
  options.k = 6;
  options.target.kind = PrivacyTarget::Kind::kRho;
  options.target.rho1 = 0.2;
  options.target.rho2 = 0.45;
  options.target.lambda = 0.1;
  options.seed = 42;
  CheckPublishEquivalence(census.table, census.TaxonomyPointers(), options);
}

TEST(ParallelEquivalenceTest, BreachStatsBitIdenticalAcrossThreadCounts) {
  CensusDataset census = GenerateCensus(3000, 11).ValueOrDie();
  PgOptions options;
  options.k = 8;
  options.p = 0.3;
  options.seed = 42;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers()).ValueOrDie();
  Rng edb_rng(77);
  ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(census.table, 300, edb_rng);

  ScenarioDataset dataset;
  dataset.name = "census";
  dataset.microdata = &census.table;
  dataset.sensitive_attr = published.sensitive_attr();
  dataset.edb = &edb;
  FixedPgRelease release(&published);
  CorruptionLinkingAdversary adversary;

  ScenarioOptions scenario;
  scenario.harness.num_victims = 40;
  scenario.harness.corruption_rate = 0.8;
  scenario.harness.seed = 42;
  const BreachStats serial =
      BreachScenario::Run(release, adversary, dataset, scenario).ValueOrDie();

  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    ScenarioOptions pooled = scenario;
    pooled.harness.pool = &pool;
    const BreachStats parallel =
        BreachScenario::Run(release, adversary, dataset, pooled).ValueOrDie();
    EXPECT_EQ(serial.attacks, parallel.attacks) << "threads=" << threads;
    // Exact double equality: the trial-order fold makes even the float
    // accumulators bit-identical.
    EXPECT_EQ(serial.max_growth, parallel.max_growth);
    EXPECT_EQ(serial.mean_growth, parallel.mean_growth);
    EXPECT_EQ(serial.max_posterior_rho1, parallel.max_posterior_rho1);
    EXPECT_EQ(serial.max_h, parallel.max_h);
    EXPECT_EQ(serial.h_top, parallel.h_top);
    EXPECT_EQ(serial.delta_bound, parallel.delta_bound);
    EXPECT_EQ(serial.rho2_bound, parallel.rho2_bound);
    EXPECT_EQ(serial.delta_breaches, parallel.delta_breaches);
    EXPECT_EQ(serial.rho_breaches, parallel.rho_breaches);
  }
}

TEST(ParallelEquivalenceTest,
     GeneralizationBreachStatsBitIdenticalAcrossThreadCounts) {
  CensusDataset census = GenerateCensus(2000, 21).ValueOrDie();
  PgOptions options;
  options.k = 6;
  options.p = 0.35;
  options.seed = 9;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers()).ValueOrDie();
  QiGroups groups = ComputeQiGroups(census.table, published.recoding());
  const int sens = CensusColumns::kIncome;

  ScenarioDataset dataset;
  dataset.name = "census";
  dataset.microdata = &census.table;
  dataset.sensitive_attr = sens;
  FixedGeneralizationRelease release(&groups);
  CorruptionLinkingAdversary adversary;

  ScenarioOptions scenario;
  scenario.harness.num_victims = 40;
  scenario.harness.corruption_rate = 0.6;
  scenario.harness.seed = 42;
  const BreachStats serial =
      BreachScenario::Run(release, adversary, dataset, scenario).ValueOrDie();
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    ScenarioOptions pooled = scenario;
    pooled.harness.pool = &pool;
    const BreachStats parallel =
        BreachScenario::Run(release, adversary, dataset, pooled).ValueOrDie();
    EXPECT_EQ(serial.attacks, parallel.attacks) << "threads=" << threads;
    EXPECT_EQ(serial.max_growth, parallel.max_growth);
    EXPECT_EQ(serial.mean_growth, parallel.mean_growth);
    EXPECT_EQ(serial.point_mass_disclosures, parallel.point_mass_disclosures);
  }
}

TEST(ParallelEquivalenceTest, EnvThreadsMatchesExplicitThreads) {
  // num_threads = 0 resolves via PGPUB_THREADS / hardware; whatever it
  // resolves to, the release must equal the explicit serial one.
  CensusDataset census = GenerateCensus(1500, 31).ValueOrDie();
  PgOptions options;
  options.k = 5;
  options.p = 0.3;
  options.seed = 42;
  const RunOutput serial =
      PublishAt(census.table, census.TaxonomyPointers(), options, 1);
  const RunOutput defaulted =
      PublishAt(census.table, census.TaxonomyPointers(), options, 0);
  ExpectIdenticalRelease(serial, defaulted, 0);
}

}  // namespace
}  // namespace pgpub
