#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel/thread_pool.h"
#include "common/random.h"
#include "perturb/randomized_response.h"
#include "perturb/reconstruction.h"

namespace pgpub {
namespace {

// -------------------------------------------------- UniformPerturbation

TEST(UniformPerturbationTest, Equation11Probabilities) {
  UniformPerturbation ch(0.25, 7);
  const double bg = 0.75 / 7.0;
  EXPECT_NEAR(ch.TransitionProb(3, 3), 0.25 + bg, 1e-12);
  EXPECT_NEAR(ch.TransitionProb(3, 4), bg, 1e-12);
}

TEST(UniformPerturbationTest, RowsSumToOne) {
  for (double p : {0.0, 0.15, 0.5, 1.0}) {
    UniformPerturbation ch(p, 50);
    for (int32_t a = 0; a < 50; ++a) {
      double sum = 0.0;
      for (int32_t b = 0; b < 50; ++b) sum += ch.TransitionProb(a, b);
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(UniformPerturbationTest, ObservationProb) {
  UniformPerturbation ch(0.3, 4);
  std::vector<double> pdf = {0.4, 0.3, 0.2, 0.1};
  for (int32_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(ch.ObservationProb(pdf, b), 0.3 * pdf[b] + 0.7 / 4.0, 1e-12);
  }
}

TEST(UniformPerturbationTest, PIsOneKeepsEverything) {
  UniformPerturbation ch(1.0, 10);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int32_t v = static_cast<int32_t>(rng.UniformU64(10));
    EXPECT_EQ(ch.Perturb(v, rng), v);
  }
}

TEST(UniformPerturbationTest, PIsZeroIsUniform) {
  UniformPerturbation ch(0.0, 5);
  Rng rng(2);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[ch.Perturb(0, rng)]++;
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.2, 0.01);
  }
}

TEST(UniformPerturbationTest, EmpiricalFrequenciesMatchEquation11) {
  const double p = 0.3;
  const int32_t m = 8;
  UniformPerturbation ch(p, m);
  Rng rng(3);
  const int n = 200000;
  std::vector<int> counts(m, 0);
  for (int i = 0; i < n; ++i) counts[ch.Perturb(2, rng)]++;
  for (int32_t b = 0; b < m; ++b) {
    EXPECT_NEAR(counts[b] / static_cast<double>(n), ch.TransitionProb(2, b),
                0.01);
  }
}

TEST(UniformPerturbationTest, ColumnPerturbationIsElementwise) {
  UniformPerturbation ch(1.0, 6);
  Rng rng(4);
  std::vector<int32_t> col = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ch.PerturbColumn(col, rng), col);
}

// --------------------------------------------------- PerturbationMatrix

TEST(PerturbationMatrixTest, UniformMatchesClosedForm) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.4, 6);
  UniformPerturbation ch(0.4, 6);
  for (int32_t a = 0; a < 6; ++a) {
    for (int32_t b = 0; b < 6; ++b) {
      EXPECT_NEAR(pm.TransitionProb(a, b), ch.TransitionProb(a, b), 1e-12);
    }
  }
}

TEST(PerturbationMatrixTest, RejectsNonStochastic) {
  EXPECT_FALSE(PerturbationMatrix::Create({{0.5, 0.4}, {0.5, 0.5}}).ok());
  EXPECT_FALSE(PerturbationMatrix::Create({{1.2, -0.2}, {0.5, 0.5}}).ok());
  EXPECT_FALSE(PerturbationMatrix::Create({{1.0}, {0.5}}).ok());
  EXPECT_FALSE(PerturbationMatrix::Create({}).ok());
}

TEST(PerturbationMatrixTest, SamplingMatchesMatrix) {
  auto pm = PerturbationMatrix::Create(
                {{0.7, 0.2, 0.1}, {0.1, 0.8, 0.1}, {0.25, 0.25, 0.5}})
                .ValueOrDie();
  Rng rng(5);
  const int n = 200000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < n; ++i) counts[pm.Perturb(2, rng)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.5, 0.01);
}

// --------------------------------------------------------- Reconstructor

TEST(ReconstructorTest, ExactOnExpectedCounts) {
  // With observed = expected channel output, reconstruction recovers the
  // true counts exactly.
  const double p = 0.3;
  std::vector<double> weights = {0.5, 0.3, 0.2};
  Reconstructor rc(p, weights);
  std::vector<double> truth = {700, 200, 100};
  const double total = 1000;
  std::vector<double> observed(3);
  for (int b = 0; b < 3; ++b) {
    observed[b] = p * truth[b] + (1 - p) * total * weights[b];
  }
  std::vector<double> est = rc.ReconstructCounts(observed);
  for (int b = 0; b < 3; ++b) EXPECT_NEAR(est[b], truth[b], 1e-6);
}

TEST(ReconstructorTest, PreservesTotal) {
  Reconstructor rc(0.4, {0.5, 0.5});
  std::vector<double> est = rc.ReconstructCounts({90, 10});
  EXPECT_NEAR(est[0] + est[1], 100.0, 1e-9);
}

TEST(ReconstructorTest, ClampsNegativesAndRescales) {
  // Observed so skewed that the naive estimate of class 1 is negative.
  Reconstructor rc(0.5, {0.5, 0.5});
  std::vector<double> est = rc.ReconstructCounts({100, 0});
  EXPECT_GE(est[1], 0.0);
  EXPECT_NEAR(est[0] + est[1], 100.0, 1e-9);
}

TEST(ReconstructorTest, PZeroReturnsObserved) {
  Reconstructor rc(0.0, {0.5, 0.5});
  std::vector<double> observed = {60, 40};
  EXPECT_EQ(rc.ReconstructCounts(observed), observed);
}

TEST(ReconstructorTest, StatisticallyUnbiasedOnSimulatedData) {
  const double p = 0.35;
  const int32_t us = 50;
  UniformPerturbation ch(p, us);
  Rng rng(6);
  // Categories over U^s: [0,24] and [25,49].
  std::vector<double> weights = {0.5, 0.5};
  Reconstructor rc(p, weights);
  const int n = 100000;
  double true0 = 0;
  std::vector<double> observed(2, 0.0);
  for (int i = 0; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(rng.UniformU64(35));  // skew low
    if (v < 25) ++true0;
    observed[ch.Perturb(v, rng) < 25 ? 0 : 1] += 1.0;
  }
  std::vector<double> est = rc.ReconstructCounts(observed);
  EXPECT_NEAR(est[0] / n, true0 / n, 0.02);
}

// ---------------------------------------------------------- InvertChannel

TEST(InvertChannelTest, RecoversTrueDistribution) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.4, 5);
  std::vector<double> truth = {0.1, 0.2, 0.3, 0.25, 0.15};
  std::vector<double> observed(5, 0.0);
  for (int b = 0; b < 5; ++b) {
    for (int a = 0; a < 5; ++a) {
      observed[b] += truth[a] * pm.TransitionProb(a, b);
    }
  }
  std::vector<double> x = InvertChannel(pm, observed).ValueOrDie();
  for (int a = 0; a < 5; ++a) EXPECT_NEAR(x[a], truth[a], 1e-9);
}

TEST(InvertChannelTest, SingularChannelFails) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.0, 4);
  EXPECT_TRUE(InvertChannel(pm, {0.25, 0.25, 0.25, 0.25})
                  .status()
                  .IsFailedPrecondition());
}

TEST(InvertChannelTest, DimensionMismatchRejected) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.5, 3);
  EXPECT_TRUE(InvertChannel(pm, {1.0, 0.0}).status().IsInvalidArgument());
}

// ------------------------------------------------ IterativeBayesReconstruct

TEST(IterativeBayesTest, ConvergesTowardTruth) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.5, 4);
  std::vector<double> truth = {0.4, 0.3, 0.2, 0.1};
  std::vector<double> observed(4, 0.0);
  for (int b = 0; b < 4; ++b) {
    for (int a = 0; a < 4; ++a) {
      observed[b] += truth[a] * pm.TransitionProb(a, b);
    }
  }
  std::vector<double> est = IterativeBayesReconstruct(pm, observed, 200);
  double total = 0.0;
  for (int a = 0; a < 4; ++a) {
    EXPECT_NEAR(est[a], truth[a], 0.02);
    total += est[a];
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(IterativeBayesTest, AlwaysReturnsValidDistribution) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.2, 3);
  std::vector<double> est =
      IterativeBayesReconstruct(pm, {100, 0, 0}, 50);
  double total = 0.0;
  for (double v : est) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ------------------------------------------- Stream-keyed perturbation
//
// Regression pins for the seed-reuse fix: tuple i is perturbed by
// Rng::ForStream(seed, i), a pure function of (seed, i). Before the fix a
// single sequential generator was threaded through the column, so a
// tuple's draw depended on every tuple before it. These goldens freeze
// the seed-42 wire format; they must never change silently.

TEST(StreamPerturbationTest, GoldenSeed42RngStreams) {
  // Raw first draws of the derived streams (integer, compiler-stable).
  EXPECT_EQ(Rng::ForStream(42, 0).Next64(), 1612282365895558498ull);
  EXPECT_EQ(Rng::ForStream(42, 1).Next64(), 17059824962477445315ull);
  EXPECT_EQ(Rng::ForStream(42, 123456789).Next64(), 11065604480197306863ull);
}

TEST(StreamPerturbationTest, GoldenSeed42UniformColumn) {
  std::vector<int32_t> col;
  for (int i = 0; i < 16; ++i) col.push_back(i % 5);
  UniformPerturbation ch(0.3, 5);
  const std::vector<int32_t> got =
      ch.PerturbColumnStreams(col, 42, nullptr).ValueOrDie();
  const std::vector<int32_t> want = {0, 4, 4, 3, 4, 4, 4, 2,
                                     4, 4, 1, 0, 4, 3, 4, 2};
  EXPECT_EQ(got, want);
}

TEST(StreamPerturbationTest, GoldenSeed42MatrixColumn) {
  PerturbationMatrix pm = PerturbationMatrix::Uniform(0.4, 6);
  std::vector<int32_t> col;
  for (int i = 0; i < 12; ++i) col.push_back(i % 6);
  const std::vector<int32_t> got =
      pm.PerturbColumnStreams(col, 42, nullptr).ValueOrDie();
  const std::vector<int32_t> want = {0, 1, 2, 1, 1, 5, 0, 0, 2, 3, 3, 5};
  EXPECT_EQ(got, want);
}

TEST(StreamPerturbationTest, PerturbAtMatchesColumnEntry) {
  // PerturbAt(value, seed, i) is the scalar form of column entry i.
  std::vector<int32_t> col;
  for (int i = 0; i < 64; ++i) col.push_back((i * 7) % 9);
  UniformPerturbation ch(0.55, 9);
  const std::vector<int32_t> column =
      ch.PerturbColumnStreams(col, 42, nullptr).ValueOrDie();
  for (size_t i = 0; i < col.size(); ++i) {
    EXPECT_EQ(ch.PerturbAt(col[i], 42, i), column[i]) << "index " << i;
  }
}

TEST(StreamPerturbationTest, ColumnIsInvariantToPoolSize) {
  std::vector<int32_t> col;
  for (int i = 0; i < 20000; ++i) col.push_back(i % 11);
  UniformPerturbation ch(0.3, 11);
  const std::vector<int32_t> serial =
      ch.PerturbColumnStreams(col, 42, nullptr).ValueOrDie();
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    const std::vector<int32_t> parallel =
        ch.PerturbColumnStreams(col, 42, &pool).ValueOrDie();
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(StreamPerturbationTest, StreamsDecoupleNeighboringTuples) {
  // The latent bug being guarded against: with a shared sequential RNG,
  // changing tuple 0's value shifts the draws consumed by tuple 1. With
  // streams, tuple i's output depends only on (value_i, seed, i).
  UniformPerturbation ch(0.3, 5);
  std::vector<int32_t> a = {0, 3, 3, 3, 3, 3, 3, 3};
  std::vector<int32_t> b = {4, 3, 3, 3, 3, 3, 3, 3};  // only tuple 0 differs
  const std::vector<int32_t> pa =
      ch.PerturbColumnStreams(a, 42, nullptr).ValueOrDie();
  const std::vector<int32_t> pb =
      ch.PerturbColumnStreams(b, 42, nullptr).ValueOrDie();
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_EQ(pa[i], pb[i]) << "index " << i;
  }
}

}  // namespace
}  // namespace pgpub
