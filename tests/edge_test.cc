/// Edge-case coverage across modules: boundary domains, degenerate
/// parameters, and rarely-hit branches.

#include <gtest/gtest.h>

#include "attack/linking_attack.h"
#include "core/pg_publisher.h"
#include "core/verify.h"
#include "datagen/hospital.h"
#include "generalize/metrics.h"
#include "generalize/tds.h"
#include "mining/evaluate.h"

namespace pgpub {
namespace {

// ----------------------------------------------------- tiny/extreme tables

TEST(EdgeTest, PublishWholeTableAsOneGroup) {
  // k = n: the only valid recoding is full suppression — one published
  // tuple with G = n.
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.k = static_cast<int>(hospital.table.num_rows());
  options.p = 0.5;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  ASSERT_EQ(published.num_rows(), 1u);
  EXPECT_EQ(published.group_size(0), hospital.table.num_rows());
  EXPECT_TRUE(VerifyPublication(hospital.table, published).ok());
}

TEST(EdgeTest, KEqualsOnePublishesPerCell) {
  // k = 1 (s = 1): every fully specialized non-empty cell publishes.
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.k = 1;
  options.p = 1.0;  // no perturbation either
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  // All 8 patients have distinct QI vectors: 8 singleton cells.
  EXPECT_EQ(published.num_rows(), 8u);
  for (size_t r = 0; r < published.num_rows(); ++r) {
    EXPECT_EQ(published.group_size(r), 1u);
  }
  EXPECT_TRUE(VerifyPublication(hospital.table, published).ok());
}

TEST(EdgeTest, PZeroPublishesPureNoise) {
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.k = 2;
  options.p = 0.0;
  options.seed = 3;
  options.keep_provenance = true;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  // With p = 0 the guarantees are perfect: MinDelta = 0.
  PgParams params{0.0, 2, 0.2,
                  hospital.table.domain(HospitalColumns::kDisease).size()};
  EXPECT_NEAR(MinDelta(params), 0.0, 1e-12);
  EXPECT_TRUE(VerifyPublication(hospital.table, published).ok());
}

TEST(EdgeTest, SingleQiAttributeTable) {
  Schema schema;
  schema.AddAttribute(
      {"q", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"s", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(0, 15),
                                          AttributeDomain::Numeric(0, 3)};
  Rng rng(4);
  std::vector<std::vector<int32_t>> cols(2);
  for (int i = 0; i < 300; ++i) {
    cols[0].push_back(static_cast<int32_t>(rng.UniformU64(16)));
    cols[1].push_back(static_cast<int32_t>(rng.UniformU64(4)));
  }
  Table t = Table::Create(schema, domains, std::move(cols)).ValueOrDie();
  PgOptions options;
  options.k = 10;
  options.p = 0.4;
  PgPublisher publisher(options);
  PublishedTable published = publisher.Publish(t, {nullptr}).ValueOrDie();
  EXPECT_TRUE(VerifyPublication(t, published).ok());
  EXPECT_GE(published.num_rows(), 2u);
}

TEST(EdgeTest, SensitiveDomainOfTwo) {
  // |U^s| = 2: the smallest discrete sensitive domain the math allows.
  Schema schema;
  schema.AddAttribute(
      {"q", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"s", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(0, 7),
                                          AttributeDomain::Numeric(0, 1)};
  Rng rng(5);
  std::vector<std::vector<int32_t>> cols(2);
  for (int i = 0; i < 200; ++i) {
    cols[0].push_back(static_cast<int32_t>(rng.UniformU64(8)));
    cols[1].push_back(static_cast<int32_t>(rng.UniformU64(2)));
  }
  Table t = Table::Create(schema, domains, std::move(cols)).ValueOrDie();
  PgOptions options;
  options.k = 5;
  options.p = 0.3;
  PgPublisher publisher(options);
  PublishedTable published = publisher.Publish(t, {nullptr}).ValueOrDie();
  PgParams params{0.3, 5, 0.5, 2};
  EXPECT_GT(MinDelta(params), 0.0);
  EXPECT_LT(MinDelta(params), 1.0);
  EXPECT_TRUE(VerifyPublication(t, published).ok());
}

// ------------------------------------------------------- attack edge cases

TEST(EdgeTest, AttackWithNoOtherCandidates) {
  // A victim alone in their cell (k = 1): e may be 0; h must still be a
  // valid probability and Theorem 1 must hold.
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.k = 1;
  options.p = 0.25;
  options.seed = 6;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  LinkingAttack attacker =
      LinkingAttack::Create(&published, &hospital.voter_list).ValueOrDie();
  Adversary adv;
  adv.victim_prior = BackgroundKnowledge::Uniform(
      hospital.table.domain(HospitalColumns::kDisease).size()).ValueOrDie();
  // Bob (index 0) has a unique QI vector even among the voter list? Not
  // necessarily — just assert the attack math stays consistent.
  AttackResult r = attacker.Attack(0, adv).ValueOrDie();
  EXPECT_GE(r.h, 0.0);
  EXPECT_LE(r.h, 1.0);
  double total = 0;
  for (double v : r.posterior) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EdgeTest, FullySkewedPriorPinsPosterior) {
  // lambda = 1: the adversary already knows the value; the posterior must
  // stay a point mass on it (no protection possible, as Definition 4
  // notes — but also no *growth*).
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.k = 2;
  options.p = 0.25;
  options.seed = 7;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  LinkingAttack attacker =
      LinkingAttack::Create(&published, &hospital.voter_list).ValueOrDie();
  const int32_t us =
      hospital.table.domain(HospitalColumns::kDisease).size();
  const int32_t truth =
      hospital.table.value(0, HospitalColumns::kDisease);
  Adversary adv;
  adv.victim_prior.pdf.assign(us, 0.0);
  adv.victim_prior.pdf[truth] = 1.0;
  AttackResult r = attacker.Attack(0, adv).ValueOrDie();
  EXPECT_NEAR(r.posterior[truth], 1.0, 1e-9);
  EXPECT_NEAR(r.MaxGrowth(adv.victim_prior).ValueOrDie(), 0.0, 1e-9);
}

TEST(EdgeTest, GValueOfExample1IsZeroWhenAllCandidatesCorrupted) {
  // Example 1's arithmetic detail: e == alpha makes the unknown-candidate
  // term vanish and g is reported as 0.
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  PgOptions options;
  options.s = 0.5;
  options.p = 0.25;
  options.seed = 2008;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(hospital.table, hospital.TaxonomyPointers())
          .ValueOrDie();
  const auto& edb = hospital.voter_list;
  size_t ellie = SIZE_MAX, debbie = SIZE_MAX, emily = SIZE_MAX;
  for (size_t i = 0; i < edb.size(); ++i) {
    if (edb.individual(i).id == "Ellie") ellie = i;
    if (edb.individual(i).id == "Debbie") debbie = i;
    if (edb.individual(i).id == "Emily") emily = i;
  }
  Adversary adv;
  adv.victim_prior = BackgroundKnowledge::Uniform(
      hospital.table.domain(HospitalColumns::kDisease).size()).ValueOrDie();
  adv.corrupted[debbie] = hospital.table.value(
      edb.individual(debbie).microdata_row, HospitalColumns::kDisease);
  adv.corrupted[emily] = Adversary::kExtraneousMark;
  LinkingAttack attacker =
      LinkingAttack::Create(&published, &edb).ValueOrDie();
  AttackResult r = attacker.Attack(ellie, adv).ValueOrDie();
  EXPECT_EQ(r.e, r.alpha);
  EXPECT_DOUBLE_EQ(r.g, 0.0);
}

// ------------------------------------------------------------ TDS corners

TEST(EdgeTest, TdsOnConstantClassLabelsStillRefines) {
  // All labels identical: info gain is zero everywhere, so refinement is
  // driven purely by the balance term — and must still happen.
  Schema schema;
  schema.AddAttribute(
      {"q", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"s", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(0, 31),
                                          AttributeDomain::Numeric(0, 4)};
  Rng rng(8);
  std::vector<std::vector<int32_t>> cols(2);
  for (int i = 0; i < 400; ++i) {
    cols[0].push_back(static_cast<int32_t>(rng.UniformU64(32)));
    cols[1].push_back(static_cast<int32_t>(rng.UniformU64(5)));
  }
  Table t = Table::Create(schema, domains, std::move(cols)).ValueOrDie();
  std::vector<int32_t> constant(t.num_rows(), 0);
  TdsOptions options;
  options.k = 8;
  TopDownSpecializer tds(t, {0}, {nullptr}, constant, 2, options);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_GT(rec.per_attr[0].num_gen_values(), 1);
  EXPECT_TRUE(IsKAnonymous(ComputeQiGroups(t, rec), 8));
}

TEST(EdgeTest, TdsSingleCodeDomainAttribute) {
  // A QI attribute with one value can never be specialized and must not
  // break anything.
  Schema schema;
  schema.AddAttribute(
      {"const", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"q", AttributeType::kNumeric, AttributeRole::kQuasiIdentifier});
  schema.AddAttribute(
      {"s", AttributeType::kNumeric, AttributeRole::kSensitive});
  std::vector<AttributeDomain> domains = {AttributeDomain::Numeric(5, 5),
                                          AttributeDomain::Numeric(0, 9),
                                          AttributeDomain::Numeric(0, 2)};
  Rng rng(9);
  std::vector<std::vector<int32_t>> cols(3);
  for (int i = 0; i < 100; ++i) {
    cols[0].push_back(0);
    cols[1].push_back(static_cast<int32_t>(rng.UniformU64(10)));
    cols[2].push_back(static_cast<int32_t>(rng.UniformU64(3)));
  }
  Table t = Table::Create(schema, domains, std::move(cols)).ValueOrDie();
  TdsOptions options;
  options.k = 5;
  TopDownSpecializer tds(t, {0, 1}, {nullptr, nullptr}, t.column(2), 3,
                         options);
  GlobalRecoding rec = tds.Run().ValueOrDie();
  EXPECT_EQ(rec.per_attr[0].num_gen_values(), 1);
  EXPECT_TRUE(IsKAnonymous(ComputeQiGroups(t, rec), 5));
}

// ------------------------------------------------------- evaluation bits

TEST(EdgeTest, EvalResultArithmetic) {
  EvalResult r;
  EXPECT_DOUBLE_EQ(r.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(r.error(), 1.0);
  r.total = 10;
  r.correct = 7;
  EXPECT_DOUBLE_EQ(r.accuracy(), 0.7);
  EXPECT_DOUBLE_EQ(r.error(), 0.3);
}

TEST(EdgeTest, GuaranteeSolverAtExactBoundary) {
  // rho2 exactly equal to MinRho2 at p: the solver must return ~p.
  PgParams params{0.25, 4, 0.1, 50};
  const double rho2 = MinRho2(params, 0.2);
  const double p =
      MaxRetentionForRho(4, 0.1, 50, 0.2, rho2).ValueOrDie();
  EXPECT_NEAR(p, 0.25, 1e-6);
}

TEST(EdgeTest, GuaranteeLambdaBelowUniformIsStillMonotone) {
  // lambda below 1/|U^s| is not a realizable pdf bound but must not break
  // the formulas (they remain monotone and within [0,1]).
  PgParams params{0.3, 6, 0.005, 50};
  const double rho2 = MinRho2(params, 0.2);
  const double delta = MinDelta(params);
  EXPECT_GT(rho2, 0.2);
  EXPECT_LT(rho2, 1.0);
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, 1.0);
}

}  // namespace
}  // namespace pgpub
