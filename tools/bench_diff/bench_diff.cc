/// \file bench_diff.cc
/// Compares a freshly produced BENCH_*.json artifact (schema_version 1,
/// as written by bench/bench_report.h) against a committed baseline and
/// fails when a tracked metric regresses beyond the tolerance. CI runs
/// this after bench_schema_check so a perf cliff shows up as a red step
/// with a per-metric diagnostic instead of a silently drifting artifact.
///
/// Usage:
///   bench_diff [--tolerance=F] [--metric=KEY:lower|higher ...]
///              BASELINE CURRENT
///
///   --tolerance=F   allowed relative drift in the bad direction
///                   (default 0.5, i.e. 50%; smoke runners are noisy).
///   --metric=K:DIR  track results-row member K; DIR says which
///                   direction is better ("lower" for latencies,
///                   "higher" for throughputs). Repeatable.
///
/// Rows are matched by index: the baseline must have been produced at
/// the same parameters (CI regenerates both at smoke scale). Rows or
/// metrics present on one side only are reported but are not
/// regressions — benches grow rows over time and baselines lag a PR.
///
/// Exit: 0 clean (possibly with drift notes), 1 regression, 2 usage or
/// I/O problem.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace pgpub {
namespace {

using obs::JsonValue;

struct TrackedMetric {
  std::string key;
  bool lower_is_better = true;
};

struct Options {
  double tolerance = 0.5;
  std::vector<TrackedMetric> metrics;
  std::string baseline_path;
  std::string current_path;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tolerance=F] [--metric=KEY:lower|higher ...] "
               "BASELINE CURRENT\n",
               argv0);
  return 2;
}

bool ParseMetric(const std::string& spec, TrackedMetric* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->key = spec.substr(0, colon);
  const std::string dir = spec.substr(colon + 1);
  if (dir == "lower") {
    out->lower_is_better = true;
  } else if (dir == "higher") {
    out->lower_is_better = false;
  } else {
    return false;
  }
  return true;
}

bool LoadDoc(const std::string& path, JsonValue* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  if (!parsed->is_object() || parsed->Find("results") == nullptr ||
      !parsed->Find("results")->is_array()) {
    std::fprintf(stderr, "bench_diff: %s: not a schema-v1 bench artifact\n",
                 path.c_str());
    return false;
  }
  *out = std::move(*parsed);
  return true;
}

/// Pulls results-row member `key` as a double; false when absent or
/// non-numeric (the caller decides whether that is noteworthy).
bool RowValue(const JsonValue& row, const std::string& key, double* out) {
  const JsonValue* v = row.Find(key.c_str());
  if (v == nullptr || !v->is_number()) return false;
  auto as_double = v->AsDouble();
  if (!as_double.ok()) return false;
  *out = *as_double;
  return true;
}

int Run(const Options& options) {
  JsonValue baseline, current;
  if (!LoadDoc(options.baseline_path, &baseline) ||
      !LoadDoc(options.current_path, &current)) {
    return 2;
  }

  const auto& base_rows = baseline.Find("results")->items();
  const auto& cur_rows = current.Find("results")->items();
  const size_t shared = base_rows.size() < cur_rows.size()
                            ? base_rows.size()
                            : cur_rows.size();
  if (base_rows.size() != cur_rows.size()) {
    std::fprintf(stderr,
                 "bench_diff: note: row count differs (baseline %zu, "
                 "current %zu); comparing the first %zu\n",
                 base_rows.size(), cur_rows.size(), shared);
  }

  int regressions = 0;
  int compared = 0;
  for (size_t i = 0; i < shared; ++i) {
    for (const TrackedMetric& metric : options.metrics) {
      double base_value = 0.0;
      double cur_value = 0.0;
      const bool has_base = RowValue(base_rows[i], metric.key, &base_value);
      const bool has_cur = RowValue(cur_rows[i], metric.key, &cur_value);
      if (!has_base || !has_cur) {
        if (has_base != has_cur) {
          std::fprintf(stderr,
                       "bench_diff: note: row %zu metric '%s' present on "
                       "one side only\n",
                       i, metric.key.c_str());
        }
        continue;
      }
      ++compared;
      // Relative drift in the bad direction. A zero baseline cannot
      // regress in the lower-is-better sense and any positive value is
      // an improvement in the higher-is-better sense, so guard it.
      bool regressed = false;
      double drift = 0.0;
      if (base_value > 0.0) {
        if (metric.lower_is_better) {
          drift = cur_value / base_value - 1.0;
        } else {
          drift = 1.0 - cur_value / base_value;
        }
        regressed = drift > options.tolerance;
      } else if (metric.lower_is_better && cur_value > 0.0) {
        // From-zero growth has no finite ratio; flag it for a human.
        drift = cur_value;
        regressed = false;
      }
      if (regressed) {
        std::fprintf(stderr,
                     "bench_diff: REGRESSION row %zu '%s': baseline %.6g, "
                     "current %.6g (%+.1f%% in the bad direction, "
                     "tolerance %.1f%%)\n",
                     i, metric.key.c_str(), base_value, cur_value,
                     drift * 100.0, options.tolerance * 100.0);
        ++regressions;
      } else {
        std::printf("bench_diff: row %zu '%s': baseline %.6g, current "
                    "%.6g (ok)\n",
                    i, metric.key.c_str(), base_value, cur_value);
      }
    }
  }

  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_diff: note: no tracked metric appeared in both "
                 "files; nothing compared\n");
  }
  if (regressions > 0) {
    std::fprintf(stderr, "bench_diff: %d regression(s) vs %s\n", regressions,
                 options.baseline_path.c_str());
    return 1;
  }
  std::printf("bench_diff: %s vs %s: OK (%d comparison(s))\n",
              options.current_path.c_str(), options.baseline_path.c_str(),
              compared);
  return 0;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  pgpub::Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      options.tolerance = std::atof(arg.c_str() + std::strlen("--tolerance="));
      if (!(options.tolerance >= 0.0)) {
        std::fprintf(stderr, "bench_diff: bad --tolerance '%s'\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--metric=", 0) == 0) {
      pgpub::TrackedMetric metric;
      if (!pgpub::ParseMetric(arg.substr(std::strlen("--metric=")),
                              &metric)) {
        std::fprintf(stderr, "bench_diff: bad --metric '%s'\n", arg.c_str());
        return 2;
      }
      options.metrics.push_back(std::move(metric));
    } else if (!arg.empty() && arg[0] == '-') {
      return pgpub::Usage(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2 || options.metrics.empty()) {
    return pgpub::Usage(argv[0]);
  }
  options.baseline_path = positional[0];
  options.current_path = positional[1];
  return pgpub::Run(options);
}
