/// \file bench_schema_check.cc
/// Validates BENCH_*.json artifacts against the schema that
/// bench/bench_report.h writes (schema_version 1). CI runs this over every
/// artifact the bench-smoke job produces; a malformed artifact fails the
/// build instead of being uploaded and silently breaking downstream
/// consumers of the perf trajectory.
///
/// Usage: bench_schema_check FILE...
/// Exit: 0 when every file validates; 1 otherwise (with one diagnostic
/// line per problem).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace pgpub {
namespace {

using obs::JsonValue;

/// Appends "<file>: <problem>" to errors; returns true when clean.
bool CheckMember(const JsonValue& doc, const char* key,
                 bool (JsonValue::*predicate)() const, const char* want,
                 const std::string& file, std::string* errors) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) {
    *errors += file + ": missing member '" + key + "'\n";
    return false;
  }
  if (!(v->*predicate)()) {
    *errors += file + ": member '" + key + "' is not " + want + "\n";
    return false;
  }
  return true;
}

bool CheckMetricsSection(const JsonValue& metrics, const std::string& file,
                         std::string* errors) {
  bool ok = true;
  ok &= CheckMember(metrics, "counters", &JsonValue::is_object, "an object",
                    file, errors);
  ok &= CheckMember(metrics, "gauges", &JsonValue::is_object, "an object",
                    file, errors);
  ok &= CheckMember(metrics, "histograms", &JsonValue::is_object, "an object",
                    file, errors);
  if (!ok) return false;
  for (const auto& [name, counter] : metrics.Find("counters")->members()) {
    if (!counter.is_integer()) {
      *errors += file + ": counter '" + name + "' is not an integer\n";
      ok = false;
    }
  }
  for (const auto& [name, h] : metrics.Find("histograms")->members()) {
    for (const char* key : {"count", "sum", "min", "max"}) {
      const JsonValue* v = h.Find(key);
      if (v == nullptr || !v->is_integer()) {
        *errors += file + ": histogram '" + name + "' lacks integer '" +
                   key + "'\n";
        ok = false;
      }
    }
    const JsonValue* buckets = h.Find("buckets");
    if (buckets == nullptr || !buckets->is_object()) {
      *errors += file + ": histogram '" + name + "' lacks buckets object\n";
      ok = false;
    }
  }
  return ok;
}

/// Cache-provenance fields (written by throughput_engine and any future
/// cache-carrying bench): when a results row carries one, the counters
/// must be integers and the hit rate a number in [0, 1]. Rows without
/// them (non-caching benches) are fine.
bool CheckCacheFields(const JsonValue& row, const std::string& file,
                      std::string* errors) {
  bool ok = true;
  for (const char* key : {"cache_hits", "cache_misses", "cache_evictions"}) {
    const JsonValue* v = row.Find(key);
    if (v != nullptr && !v->is_integer()) {
      *errors += file + ": results member '" + key + "' is not an integer\n";
      ok = false;
    }
  }
  if (const JsonValue* rate = row.Find("cache_hit_rate"); rate != nullptr) {
    if (!rate->is_number()) {
      *errors += file + ": results member 'cache_hit_rate' is not a number\n";
      ok = false;
    } else {
      const double v = rate->AsDouble().ok() ? *rate->AsDouble() : -1.0;
      if (!(v >= 0.0 && v <= 1.0)) {
        *errors += file + ": results member 'cache_hit_rate' " +
                   std::to_string(v) + " is outside [0, 1]\n";
        ok = false;
      }
    }
  }
  return ok;
}

/// Serving-latency fields (written by load_server and any future
/// serving bench): latency percentiles must be non-negative numbers and
/// the rejection rate a number in [0, 1]. Rows without them are fine.
bool CheckServingFields(const JsonValue& row, const std::string& file,
                        std::string* errors) {
  bool ok = true;
  for (const char* key : {"p50_ms", "p99_ms"}) {
    const JsonValue* v = row.Find(key);
    if (v == nullptr) continue;
    if (!v->is_number()) {
      *errors += file + ": results member '" + key + "' is not a number\n";
      ok = false;
    } else if (const double ms = v->AsDouble().ok() ? *v->AsDouble() : -1.0;
               !(ms >= 0.0)) {
      *errors += file + ": results member '" + key + "' " +
                 std::to_string(ms) + " is negative\n";
      ok = false;
    }
  }
  if (const JsonValue* rate = row.Find("rejection_rate"); rate != nullptr) {
    if (!rate->is_number()) {
      *errors += file + ": results member 'rejection_rate' is not a number\n";
      ok = false;
    } else {
      const double v = rate->AsDouble().ok() ? *rate->AsDouble() : -1.0;
      if (!(v >= 0.0 && v <= 1.0)) {
        *errors += file + ": results member 'rejection_rate' " +
                   std::to_string(v) + " is outside [0, 1]\n";
        ok = false;
      }
    }
  }
  return ok;
}

bool CheckFile(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", file.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", file.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue& doc = *parsed;
  std::string errors;
  if (!doc.is_object()) {
    errors = file + ": top level is not a JSON object\n";
  } else {
    bool ok = true;
    ok &= CheckMember(doc, "schema_version", &JsonValue::is_integer,
                      "an integer", file, &errors);
    ok &= CheckMember(doc, "name", &JsonValue::is_string, "a string", file,
                      &errors);
    ok &= CheckMember(doc, "params", &JsonValue::is_object, "an object",
                      file, &errors);
    ok &= CheckMember(doc, "wall_ns", &JsonValue::is_integer, "an integer",
                      file, &errors);
    ok &= CheckMember(doc, "iterations", &JsonValue::is_integer,
                      "an integer", file, &errors);
    ok &= CheckMember(doc, "results", &JsonValue::is_array, "an array",
                      file, &errors);
    ok &= CheckMember(doc, "metrics", &JsonValue::is_object, "an object",
                      file, &errors);
    if (ok) {
      const JsonValue* version = doc.Find("schema_version");
      int64_t v = version->AsInt64().ok() ? *version->AsInt64() : -1;
      if (v != 1) {
        errors += file + ": unsupported schema_version " +
                  std::to_string(v) + "\n";
      }
      for (const JsonValue& row : doc.Find("results")->items()) {
        if (!row.is_object()) {
          errors += file + ": results row is not an object\n";
          break;
        }
        CheckCacheFields(row, file, &errors);
        CheckServingFields(row, file, &errors);
      }
      CheckMetricsSection(*doc.Find("metrics"), file, &errors);
    }
  }
  if (!errors.empty()) {
    std::fputs(errors.c_str(), stderr);
    return false;
  }
  std::printf("%s: OK\n", file.c_str());
  return true;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s BENCH_file.json...\n", argv[0]);
    return 2;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    all_ok &= pgpub::CheckFile(argv[i]);
  }
  return all_ok ? 0 : 1;
}
