// pgpub_lint — project-specific static analysis for the PG publication
// codebase. Lexer-based (no compiler front end): enforces the ten
// invariants documented in lint.h over src/, bench/ and examples/.
//
// Usage:
//   pgpub_lint [--root=DIR] [--allowlist=FILE] [--rules=L1,L3,...] [paths...]
//
// With no paths, scans src/ bench/ examples/ under --root (default: the
// current directory, walking up until a directory containing src/ is
// found). Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

using pgpub::lint::CanonicalRuleName;
using pgpub::lint::CategorizeRelPath;
using pgpub::lint::FileCategory;
using pgpub::lint::Finding;
using pgpub::lint::LexedFile;
using pgpub::lint::LintOptions;

bool HasCxxExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Repo-relative path with forward slashes, for policy matching and
/// diagnostics.
std::string RelPath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  std::string s = rel.generic_string();
  while (s.rfind("./", 0) == 0) s.erase(0, 2);
  return s;
}

/// Finds the repo root: the nearest ancestor of `start` containing src/.
fs::path FindRoot(fs::path start) {
  start = fs::absolute(start);
  for (fs::path dir = start; !dir.empty(); dir = dir.parent_path()) {
    if (fs::is_directory(dir / "src")) return dir;
    if (dir == dir.root_path()) break;
  }
  return start;
}

bool LoadAllowlist(const fs::path& file, std::set<std::string>* out) {
  std::ifstream in(file);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    const size_t e = line.find_last_not_of(" \t\r");
    out->insert(line.substr(b, e - b + 1));
  }
  return true;
}

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root=DIR] [--allowlist=FILE] [--rules=L1,L2,...]"
               " [paths...]\n"
               "rules: L1 discarded-status, L2 unchecked-result, L3"
               " check-on-input-path,\n       L4 nondeterminism, L5"
               " float-equality, L6 direct-io,\n       L7 raw-thread,"
               " L8 raw-mutex, L9 unannotated-guard,\n       L10 span-name-literal\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path allowlist_file;
  std::set<std::string> rules;
  std::vector<fs::path> explicit_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_file = arg.substr(12);
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string r;
      while (std::getline(ss, r, ',')) {
        const std::string canon = CanonicalRuleName(r);
        if (canon.empty()) {
          std::cerr << "pgpub_lint: unknown rule '" << r << "'\n";
          return Usage(argv[0]);
        }
        rules.insert(canon);
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "pgpub_lint: unknown flag '" << arg << "'\n";
      return Usage(argv[0]);
    } else {
      explicit_paths.emplace_back(arg);
    }
  }

  if (root.empty()) root = FindRoot(fs::current_path());
  if (!fs::is_directory(root)) {
    std::cerr << "pgpub_lint: root '" << root.string()
              << "' is not a directory\n";
    return 2;
  }
  if (allowlist_file.empty()) {
    const fs::path candidate = root / "tools" / "lint" / "check_allowlist.txt";
    if (fs::exists(candidate)) allowlist_file = candidate;
  }

  LintOptions options;
  options.enabled_rules = rules;
  if (!allowlist_file.empty() &&
      !LoadAllowlist(allowlist_file, &options.check_allowlist)) {
    std::cerr << "pgpub_lint: cannot read allowlist '"
              << allowlist_file.string() << "'\n";
    return 2;
  }

  // Collect the file set.
  std::vector<fs::path> files;
  auto add_tree = [&](const fs::path& dir) {
    if (!fs::is_directory(dir)) return;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && HasCxxExtension(entry.path())) {
        files.push_back(entry.path());
      }
    }
  };
  if (explicit_paths.empty()) {
    add_tree(root / "src");
    add_tree(root / "bench");
    add_tree(root / "examples");
  } else {
    for (const fs::path& p : explicit_paths) {
      if (fs::is_directory(p)) {
        add_tree(p);
      } else if (fs::is_regular_file(p)) {
        files.push_back(p);
      } else {
        std::cerr << "pgpub_lint: no such file: " << p.string() << "\n";
        return 2;
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: lex everything once, harvesting the Status/Result API surface
  // across the whole scan set so call sites in one file see declarations
  // from another.
  struct Unit {
    std::string rel;
    FileCategory category;
    LexedFile lexed;
  };
  std::vector<Unit> units;
  units.reserve(files.size());
  for (const fs::path& file : files) {
    std::string source;
    if (!ReadFile(file, &source)) {
      std::cerr << "pgpub_lint: cannot read " << file.string() << "\n";
      return 2;
    }
    Unit u;
    u.rel = RelPath(file, root);
    u.category = CategorizeRelPath(u.rel);
    u.lexed = pgpub::lint::Lex(source);
    pgpub::lint::HarvestStatusApis(u.lexed, &options.status_apis);
    units.push_back(std::move(u));
  }

  // Pass 2: run the rules.
  int total = 0;
  int scanned = 0;
  for (const Unit& u : units) {
    if (u.category == FileCategory::kExempt) continue;
    ++scanned;
    for (const Finding& f :
         pgpub::lint::LintFile(u.rel, u.category, u.lexed, options)) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      ++total;
    }
  }

  if (total == 0) {
    std::cerr << "pgpub_lint: " << scanned << " files clean ("
              << options.status_apis.size() << " Status/Result APIs tracked)\n";
    return 0;
  }
  std::cerr << "pgpub_lint: " << total << " finding" << (total == 1 ? "" : "s")
            << " in " << scanned << " files\n";
  return 1;
}
