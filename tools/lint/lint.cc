#include "lint.h"

#include <algorithm>
#include <map>

namespace pgpub::lint {

const char* const kRuleDiscardedStatus = "discarded-status";
const char* const kRuleUncheckedResult = "unchecked-result";
const char* const kRuleCheckOnInputPath = "check-on-input-path";
const char* const kRuleNondeterminism = "nondeterminism";
const char* const kRuleFloatEquality = "float-equality";
const char* const kRuleDirectIo = "direct-io";
const char* const kRuleRawThread = "raw-thread";
const char* const kRuleRawMutex = "raw-mutex";
const char* const kRuleUnannotatedGuard = "unannotated-guard";
const char* const kRuleSpanLiteral = "span-name-literal";

std::string CanonicalRuleName(const std::string& name_or_id) {
  static const std::map<std::string, std::string> kMap = {
      {"L1", kRuleDiscardedStatus},     {"l1", kRuleDiscardedStatus},
      {"L2", kRuleUncheckedResult},     {"l2", kRuleUncheckedResult},
      {"L3", kRuleCheckOnInputPath},    {"l3", kRuleCheckOnInputPath},
      {"L4", kRuleNondeterminism},      {"l4", kRuleNondeterminism},
      {"L5", kRuleFloatEquality},       {"l5", kRuleFloatEquality},
      {"L6", kRuleDirectIo},            {"l6", kRuleDirectIo},
      {"L7", kRuleRawThread},           {"l7", kRuleRawThread},
      {"L8", kRuleRawMutex},            {"l8", kRuleRawMutex},
      {"L9", kRuleUnannotatedGuard},    {"l9", kRuleUnannotatedGuard},
      {"L10", kRuleSpanLiteral},        {"l10", kRuleSpanLiteral},
      {"io", kRuleDirectIo},
      {"thread", kRuleRawThread},
      {"mutex", kRuleRawMutex},
      {"span", kRuleSpanLiteral},
      {kRuleDiscardedStatus, kRuleDiscardedStatus},
      {kRuleUncheckedResult, kRuleUncheckedResult},
      {kRuleCheckOnInputPath, kRuleCheckOnInputPath},
      {kRuleNondeterminism, kRuleNondeterminism},
      {kRuleFloatEquality, kRuleFloatEquality},
      {kRuleDirectIo, kRuleDirectIo},
      {kRuleRawThread, kRuleRawThread},
      {kRuleRawMutex, kRuleRawMutex},
      {kRuleUnannotatedGuard, kRuleUnannotatedGuard},
      {kRuleSpanLiteral, kRuleSpanLiteral},
  };
  auto it = kMap.find(name_or_id);
  return it == kMap.end() ? std::string() : it->second;
}

FileCategory CategorizeRelPath(const std::string& rel_path) {
  auto starts_with = [&](const char* prefix) {
    return rel_path.rfind(prefix, 0) == 0;
  };
  if (starts_with("src/")) return FileCategory::kLibrary;
  if (starts_with("bench/") || starts_with("examples/")) {
    return FileCategory::kHarness;
  }
  return FileCategory::kExempt;
}

namespace {

using Tokens = std::vector<Token>;

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Walks from `open` (an index of "(") forward to its matching ")".
/// Returns tokens.size() when unbalanced.
size_t MatchForward(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

/// Walks from `close` (an index of ")") backward to its matching "(".
/// Returns SIZE_MAX when unbalanced.
size_t MatchBackward(const Tokens& toks, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == ")") ++depth;
    if (toks[i].text == "(") {
      if (--depth == 0) return i;
    }
  }
  return static_cast<size_t>(-1);
}

/// True when token index `i` names a function being *called or declared*:
/// an identifier immediately followed by "(".
bool IsCallLike(const Tokens& toks, size_t i) {
  return toks[i].kind == TokenKind::kIdentifier && i + 1 < toks.size() &&
         IsPunct(toks[i + 1], "(");
}

/// Skips a balanced template argument list: `i` points at "<"; returns the
/// index one past the matching ">" (handles ">>"), or `i` when this does
/// not look like a template list.
size_t SkipTemplateArgs(const Tokens& toks, size_t i) {
  if (i >= toks.size() || !IsPunct(toks[i], "<")) return i;
  int depth = 0;
  for (size_t j = i; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == "<<") depth += 2;
      if (t.text == ">") {
        if (--depth == 0) return j + 1;
      }
      if (t.text == ">>") {
        depth -= 2;
        if (depth <= 0) return j + 1;
      }
      // A statement boundary means this was a comparison, not a template.
      if (t.text == ";" || t.text == "{" || t.text == "}") return i;
    }
  }
  return i;
}

void Report(std::vector<Finding>* out, const std::string& file,
            const Suppressions& sup, int line, const char* rule,
            std::string message) {
  if (sup.Allows(line, rule)) return;
  // Short ids (and the "io"/"thread"/"mutex" shorthands) work in allow()
  // too.
  for (const char* id : {"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8",
                         "L9", "L10", "io", "thread", "mutex", "span"}) {
    if (CanonicalRuleName(id) == rule && sup.Allows(line, id)) return;
  }
  out->push_back(Finding{file, line, rule, std::move(message)});
}

// ------------------------------------------------------------ declaration
// harvesting (for L1)

/// Names that start a declarator chain we never want in the API set.
bool IsHarvestStopword(const std::string& name) {
  // `operator` overloads and macro-ish names are not call-position
  // identifiers the discard scan can match sensibly.
  return name == "operator" || name == "if" || name == "while" ||
         name == "for" || name == "switch" || name == "return";
}

}  // namespace

void HarvestStatusApis(const LexedFile& lexed, std::set<std::string>* out) {
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    size_t after_type = 0;
    if (toks[i].text == "Status") {
      after_type = i + 1;
    } else if (toks[i].text == "Result" && i + 1 < toks.size() &&
               IsPunct(toks[i + 1], "<")) {
      const size_t past = SkipTemplateArgs(toks, i + 1);
      if (past == i + 1) continue;
      after_type = past;
    } else {
      continue;
    }
    // `pgpub::Status` qualification: treat the qualifier as part of the
    // type, i.e. the scan above already landed on the last component.
    // Declarator chain: ident (:: ident)* "(".
    size_t j = after_type;
    std::string last_name;
    while (j + 1 < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      last_name = toks[j].text;
      if (IsPunct(toks[j + 1], "(")) {
        if (!last_name.empty() && !IsHarvestStopword(last_name)) {
          out->insert(last_name);
        }
        break;
      }
      if (IsPunct(toks[j + 1], "::") && j + 2 < toks.size()) {
        j += 2;
        continue;
      }
      break;
    }
  }
}

namespace {

// -------------------------------------------------------------------- L1

/// Decides whether the call whose name is at `i` discards its value.
/// Walks backward over the receiver chain to the statement boundary and
/// forward past the argument list.
bool IsDiscardedCall(const Tokens& toks, size_t i) {
  // Forward: the full postfix expression must end right after the
  // argument list for the value to be discarded.
  const size_t close = MatchForward(toks, i + 1);
  if (close >= toks.size() || close + 1 >= toks.size()) return false;
  if (!IsPunct(toks[close + 1], ";")) return false;

  // Backward: step over `obj.` / `ns::` / `call().` receiver chains.
  size_t j = i;
  while (j > 0) {
    const Token& prev = toks[j - 1];
    if (IsPunct(prev, ".") || IsPunct(prev, "->") || IsPunct(prev, "::")) {
      if (j < 2) return false;
      const Token& recv = toks[j - 2];
      if (recv.kind == TokenKind::kIdentifier) {
        j -= 2;
        continue;
      }
      if (IsPunct(recv, ")")) {
        const size_t open = MatchBackward(toks, j - 2);
        if (open == static_cast<size_t>(-1)) return false;
        // Step to whatever precedes the call producing the receiver.
        if (open > 0 && toks[open - 1].kind == TokenKind::kIdentifier) {
          j = open - 1;
          continue;
        }
        return false;
      }
      return false;
    }
    break;
  }
  if (j == 0) return true;  // first token of the file: statement position
  const Token& boundary = toks[j - 1];
  if (IsPunct(boundary, ";") || IsPunct(boundary, "{") ||
      IsPunct(boundary, "}") || IsIdent(boundary, "else") ||
      IsIdent(boundary, "do") ||
      boundary.kind == TokenKind::kPreprocessor) {
    return true;
  }
  if (IsPunct(boundary, ")")) {
    const size_t open = MatchBackward(toks, j - 1);
    if (open == static_cast<size_t>(-1) || open == 0) return false;
    // `(void)Call();` is the sanctioned explicit-discard idiom.
    if (open + 2 == j - 1 && IsIdent(toks[open + 1], "void")) return false;
    const Token& before = toks[open - 1];
    // `if (...) Call();` — still a discarded statement.
    return IsIdent(before, "if") || IsIdent(before, "for") ||
           IsIdent(before, "while") || IsIdent(before, "switch");
  }
  return false;
}

void RunDiscardedStatus(const std::string& file, const LexedFile& lexed,
                        const LintOptions& options,
                        std::vector<Finding>* out) {
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsCallLike(toks, i)) continue;
    if (options.status_apis.count(toks[i].text) == 0) continue;
    // Skip declarations/definitions: preceded by the return type token.
    if (i > 0 &&
        (IsIdent(toks[i - 1], "Status") || IsPunct(toks[i - 1], ">"))) {
      continue;
    }
    if (IsDiscardedCall(toks, i)) {
      Report(out, file, lexed.suppressions, toks[i].line,
             kRuleDiscardedStatus,
             "result of Status/Result-returning '" + toks[i].text +
                 "' is discarded; propagate with RETURN_IF_ERROR / "
                 "ASSIGN_OR_RETURN or handle the error");
    }
  }
}

// -------------------------------------------------------------------- L2

void RunUncheckedResult(const std::string& file, const LexedFile& lexed,
                        std::vector<Finding>* out) {
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "ValueOrDie")) continue;
    if (!IsPunct(toks[i + 1], "(")) continue;
    if (i == 0) continue;
    const Token& access = toks[i - 1];
    if (!IsPunct(access, ".") && !IsPunct(access, "->")) continue;
    if (i < 2) continue;

    // Identify the receiver.
    const Token& recv = toks[i - 2];
    std::string var;
    if (recv.kind == TokenKind::kIdentifier) {
      var = recv.text;
    } else if (IsPunct(recv, ")")) {
      const size_t open = MatchBackward(toks, i - 2);
      // `std::move(x).ValueOrDie()` unwraps x — look through the move.
      if (open != static_cast<size_t>(-1) && open > 0 &&
          IsIdent(toks[open - 1], "move") && open + 1 < toks.size() &&
          toks[open + 1].kind == TokenKind::kIdentifier &&
          IsPunct(toks[open + 2], ")")) {
        var = toks[open + 1].text;
      }
    }

    if (var.empty()) {
      Report(out, file, lexed.suppressions, toks[i].line,
             kRuleUncheckedResult,
             "ValueOrDie() on an unnamed temporary Result — bind it and "
             "check ok()/status(), or use ASSIGN_OR_RETURN");
      continue;
    }

    // Look backward for `var.ok(` / `var.status(` / `var->ok(` ...
    bool checked = false;
    for (size_t j = 0; j + 2 < toks.size() && j < i; ++j) {
      if (toks[j].kind != TokenKind::kIdentifier || toks[j].text != var) {
        continue;
      }
      if (!IsPunct(toks[j + 1], ".") && !IsPunct(toks[j + 1], "->")) {
        continue;
      }
      if (IsIdent(toks[j + 2], "ok") || IsIdent(toks[j + 2], "status")) {
        checked = true;
        break;
      }
    }
    if (!checked) {
      Report(out, file, lexed.suppressions, toks[i].line,
             kRuleUncheckedResult,
             "'" + var +
                 ".ValueOrDie()' without a preceding ok()/status() check "
                 "of '" +
                 var + "'");
    }
  }
}

// -------------------------------------------------------------------- L3

void RunCheckOnInputPath(const std::string& file, const LexedFile& lexed,
                         const LintOptions& options,
                         std::vector<Finding>* out) {
  if (options.check_allowlist.count(file) > 0) return;
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text.rfind("PGPUB_CHECK", 0) != 0) continue;
    // The macro definitions themselves live behind the allowlist
    // (common/logging.h); everything else is a use.
    Report(out, file, lexed.suppressions, t.line, kRuleCheckOnInputPath,
           t.text +
               " on a user-reachable path — return Status/Result instead "
               "(or add the file to the CHECK allowlist if it is an "
               "internal invariant layer)");
  }
}

// -------------------------------------------------------------------- L4

void RunNondeterminism(const std::string& file, const LexedFile& lexed,
                       const LintOptions& options,
                       std::vector<Finding>* out) {
  if (options.nondeterminism_exempt.count(file) > 0) return;
  static const std::set<std::string> kBannedAnywhere = {
      "random_device",  "mt19937",      "mt19937_64",
      "minstd_rand",    "minstd_rand0", "default_random_engine",
      "knuth_b",        "ranlux24",     "ranlux48",
      "random_shuffle",
  };
  static const std::set<std::string> kBannedCalls = {"rand", "srand",
                                                     "time", "clock"};
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kBannedAnywhere.count(t.text) > 0) {
      Report(out, file, lexed.suppressions, t.line, kRuleNondeterminism,
             "'" + t.text +
                 "' breaks deterministic replay — route all randomness "
                 "through pgpub::Rng (common/random.h)");
      continue;
    }
    if (kBannedCalls.count(t.text) > 0 && IsCallLike(toks, i)) {
      // Only flag free calls, not members like foo.time(...).
      if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;
      }
      Report(out, file, lexed.suppressions, t.line, kRuleNondeterminism,
             "'" + t.text +
                 "()' is nondeterministic — seeds and clocks must come "
                 "from configuration, not the environment");
    }
  }
}

// -------------------------------------------------------------------- L5

/// Collects identifiers declared with type double/float in this file.
std::set<std::string> CollectFloatingVars(const Tokens& toks) {
  std::set<std::string> vars;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "double") && !IsIdent(toks[i], "float")) continue;
    size_t j = i + 1;
    // Step over references and cv-qualifiers, but stop at pointers:
    // comparing pointers exactly is fine.
    while (j < toks.size() &&
           (IsPunct(toks[j], "&") || IsIdent(toks[j], "const"))) {
      ++j;
    }
    while (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
      const std::string& name = toks[j].text;
      if (j + 1 >= toks.size()) break;
      const Token& next = toks[j + 1];
      if (IsPunct(next, "(")) break;  // function declaration, not a var
      if (IsPunct(next, "=") || IsPunct(next, ";") || IsPunct(next, ",") ||
          IsPunct(next, ")") || IsPunct(next, "[") || IsPunct(next, "{") ||
          IsPunct(next, ":")) {
        vars.insert(name);
      }
      // Continue through multi-declarators: `double a, b;`
      if (IsPunct(next, ",") && j + 2 < toks.size() &&
          toks[j + 2].kind == TokenKind::kIdentifier) {
        j += 2;
        continue;
      }
      break;
    }
  }
  return vars;
}

void RunFloatEquality(const std::string& file, const LexedFile& lexed,
                      const LintOptions& options,
                      std::vector<Finding>* out) {
  if (options.float_eq_exempt.count(file) > 0) return;
  const Tokens& toks = lexed.tokens;
  const std::set<std::string> float_vars = CollectFloatingVars(toks);

  auto is_float_operand = [&](size_t idx, int direction) {
    if (idx >= toks.size()) return false;
    const Token& t = toks[idx];
    if (t.kind == TokenKind::kNumber && t.is_float) return true;
    if (t.kind == TokenKind::kIdentifier && float_vars.count(t.text) > 0) {
      // Exclude member access `x.name` (the declared var may be shadowed
      // by an unrelated member of the same name) unless direction allows.
      if (direction < 0 && idx > 0 &&
          (IsPunct(toks[idx - 1], ".") || IsPunct(toks[idx - 1], "->"))) {
        return true;  // still a double-typed name in this file, flag it
      }
      return true;
    }
    // Unary sign before a float literal on the right-hand side.
    if (direction > 0 && (IsPunct(t, "-") || IsPunct(t, "+")) &&
        idx + 1 < toks.size() && toks[idx + 1].kind == TokenKind::kNumber &&
        toks[idx + 1].is_float) {
      return true;
    }
    return false;
  };

  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!IsPunct(toks[i], "==") && !IsPunct(toks[i], "!=")) continue;
    if (is_float_operand(i - 1, -1) || is_float_operand(i + 1, +1)) {
      Report(out, file, lexed.suppressions, toks[i].line, kRuleFloatEquality,
             "exact '" + toks[i].text +
                 "' on floating-point values — use an epsilon comparison "
                 "(common/math_util.h) or restructure");
    }
  }
}

// -------------------------------------------------------------------- L6

/// Entries ending in '/' match as directory prefixes; anything else must
/// equal the relative path exactly.
bool PathExempt(const std::string& file,
                const std::set<std::string>& exemptions) {
  for (const std::string& entry : exemptions) {
    if (!entry.empty() && entry.back() == '/') {
      if (file.rfind(entry, 0) == 0) return true;
    } else if (file == entry) {
      return true;
    }
  }
  return false;
}

void RunDirectIo(const std::string& file, const LexedFile& lexed,
                 const LintOptions& options, std::vector<Finding>* out) {
  if (PathExempt(file, options.direct_io_exempt)) return;
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "cout" && t.text != "cerr" && t.text != "clog") continue;
    // Member access `foo.cout` is some unrelated name, not the stream.
    if (i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
      continue;
    }
    Report(out, file, lexed.suppressions, t.line, kRuleDirectIo,
           "direct write to std::" + t.text +
               " in library code — emit a structured event through "
               "pgpub::obs::Logger (src/obs/log.h) so runs stay "
               "machine-readable");
  }
}

// -------------------------------------------------------------------- L7

void RunRawThread(const std::string& file, const LexedFile& lexed,
                  const LintOptions& options, std::vector<Finding>* out) {
  if (PathExempt(file, options.raw_thread_exempt)) return;
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    const bool is_thread_type =
        t.text == "thread" || t.text == "jthread";
    const bool is_async = t.text == "async";
    if (!is_thread_type && !is_async) continue;
    // Only the std:: names; a field or local called `thread` is fine.
    if (i < 2 || !IsPunct(toks[i - 1], "::") || !IsIdent(toks[i - 2], "std")) {
      continue;
    }
    if (is_thread_type) {
      // `std::thread::hardware_concurrency()` and friends are queries on
      // the type, not thread spawns.
      if (i + 1 < toks.size() && IsPunct(toks[i + 1], "::")) continue;
      Report(out, file, lexed.suppressions, t.line, kRuleRawThread,
             "raw std::" + t.text +
                 " outside src/common/parallel/ — spawn work through "
                 "ThreadPool/ParallelFor so execution stays deterministic "
                 "and errors propagate as Status");
    } else if (IsCallLike(toks, i)) {
      Report(out, file, lexed.suppressions, t.line, kRuleRawThread,
             "std::async outside src/common/parallel/ — use "
             "ThreadPool/ParallelFor; detached futures escape the "
             "deterministic scheduling and Status error contract");
    }
  }
}

// -------------------------------------------------------------------- L8

void RunRawMutex(const std::string& file, const LexedFile& lexed,
                 const LintOptions& options, std::vector<Finding>* out) {
  if (PathExempt(file, options.raw_mutex_exempt)) return;
  // The raw locking vocabulary. Naming any of these std:: types outside
  // the sync layer means a lock the capability analysis cannot see.
  static const std::set<std::string> kRawLocking = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
      "condition_variable", "condition_variable_any",
  };
  const Tokens& toks = lexed.tokens;
  for (size_t i = 2; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kRawLocking.count(t.text) == 0) continue;
    // Only the std:: names; `lock_guard` as a local name is someone
    // else's problem, and pgpub::Mutex never collides.
    if (!IsPunct(toks[i - 1], "::") || !IsIdent(toks[i - 2], "std")) {
      continue;
    }
    Report(out, file, lexed.suppressions, t.line, kRuleRawMutex,
           "raw std::" + t.text +
               " outside src/common/sync/ — use pgpub::Mutex / MutexLock "
               "/ CondVar (src/common/sync/mutex.h) so Clang "
               "-Wthread-safety and the lock-order detector can see the "
               "lock");
  }
}

// -------------------------------------------------------------------- L9

/// Walks from `open` (an index of "{") forward to its matching "}".
/// Returns tokens.size() when unbalanced.
size_t MatchBraceForward(const Tokens& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

/// One member declaration at class-body depth: tokens [begin, end), where
/// `end` is the index of the terminating ";".
struct MemberStmt {
  size_t begin = 0;
  size_t end = 0;
};

/// Splits a class body (tokens strictly between `open` and `close`, both
/// braces) into member statements. Function definitions (a brace group
/// not followed by ";") are dropped; brace initializers and nested type
/// definitions stay inside their statement.
std::vector<MemberStmt> SplitMemberStatements(const Tokens& toks,
                                              size_t open, size_t close) {
  std::vector<MemberStmt> stmts;
  size_t start = open + 1;
  size_t i = open + 1;
  while (i < close) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "public" || t.text == "private" ||
         t.text == "protected") &&
        i + 1 < close && IsPunct(toks[i + 1], ":")) {
      i += 2;
      start = i;
      continue;
    }
    if (IsPunct(t, "{")) {
      const size_t end = MatchBraceForward(toks, i);
      if (end >= close) break;
      if (end + 1 < close && IsPunct(toks[end + 1], ";")) {
        stmts.push_back(MemberStmt{start, end + 1});
        i = end + 2;
      } else {
        // Inline function definition — nothing declared at body depth.
        i = end + 1;
      }
      start = i;
      continue;
    }
    if (IsPunct(t, ";")) {
      if (i > start) stmts.push_back(MemberStmt{start, i});
      ++i;
      start = i;
      continue;
    }
    ++i;
  }
  return stmts;
}

bool StmtHasIdent(const Tokens& toks, const MemberStmt& s,
                  const char* text) {
  for (size_t i = s.begin; i < s.end; ++i) {
    if (IsIdent(toks[i], text)) return true;
  }
  return false;
}

/// A "(" outside template argument lists means the statement declares a
/// function (or a deleted constructor), not a data member.
bool StmtHasCallParen(const Tokens& toks, const MemberStmt& s) {
  for (size_t i = s.begin; i < s.end;) {
    if (IsPunct(toks[i], "<")) {
      const size_t past = SkipTemplateArgs(toks, i);
      if (past > i) {
        i = past;
        continue;
      }
    }
    if (IsPunct(toks[i], "(")) return true;
    ++i;
  }
  return false;
}

/// True when the statement declares a pgpub::Mutex member (the lock
/// itself, or a pointer to one). Type definitions, friend declarations
/// and functions mentioning Mutex (constructors, Wait(Mutex*)) don't
/// count.
bool IsMutexMember(const Tokens& toks, const MemberStmt& s) {
  if (!StmtHasIdent(toks, s, "Mutex")) return false;
  for (const char* kw : {"struct", "class", "enum", "using", "typedef",
                         "friend", "MutexLock"}) {
    if (StmtHasIdent(toks, s, kw)) return false;
  }
  return !StmtHasCallParen(toks, s);
}

/// True when the statement is exempt from the guard requirement: already
/// annotated, immutable, atomic, a type/alias/friend declaration, the
/// lock machinery itself, or a function declaration (any "(" outside
/// template argument lists).
bool IsExemptMember(const Tokens& toks, const MemberStmt& s) {
  if (StmtHasIdent(toks, s, "PGPUB_GUARDED_BY") ||
      StmtHasIdent(toks, s, "PGPUB_PT_GUARDED_BY")) {
    return true;
  }
  for (const char* kw :
       {"static", "constexpr", "const", "using", "typedef", "friend",
        "struct", "class", "enum", "template", "operator", "atomic",
        "Mutex", "MutexLock", "CondVar"}) {
    if (StmtHasIdent(toks, s, kw)) return true;
  }
  return StmtHasCallParen(toks, s);  // function declaration
}

/// The declared name: the last identifier before the initializer (or the
/// terminating ";").
std::string MemberName(const Tokens& toks, const MemberStmt& s) {
  std::string name;
  for (size_t i = s.begin; i < s.end; ++i) {
    if (IsPunct(toks[i], "=") || IsPunct(toks[i], "{") ||
        IsPunct(toks[i], "[")) {
      break;
    }
    if (toks[i].kind == TokenKind::kIdentifier) name = toks[i].text;
  }
  return name;
}

void RunUnannotatedGuard(const std::string& file, const LexedFile& lexed,
                         std::vector<Finding>* out) {
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i], "class") && !IsIdent(toks[i], "struct")) continue;
    if (i > 0 && IsIdent(toks[i - 1], "enum")) continue;

    // Find the body's opening brace (or bail on forward declarations,
    // template parameters and elaborated specifiers). Attribute macros
    // before the name may carry parenthesized arguments.
    std::string class_name;
    size_t open = toks.size();
    bool in_bases = false;
    int paren_depth = 0;
    for (size_t j = i + 1; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (IsPunct(t, "(")) {
        ++paren_depth;
        continue;
      }
      if (IsPunct(t, ")")) {
        if (paren_depth == 0) break;
        --paren_depth;
        continue;
      }
      if (paren_depth > 0) continue;
      if (t.kind == TokenKind::kIdentifier) {
        if (!in_bases) class_name = t.text;
        continue;
      }
      if (IsPunct(t, "{")) {
        open = j;
        break;
      }
      if (IsPunct(t, ":")) {
        in_bases = true;
        continue;
      }
      if (IsPunct(t, "<")) {
        const size_t past = SkipTemplateArgs(toks, j);
        if (past == j) break;
        j = past - 1;
        continue;
      }
      if (IsPunct(t, ",") || IsPunct(t, ";") || IsPunct(t, ">") ||
          IsPunct(t, "=") || IsPunct(t, "&") || IsPunct(t, "*")) {
        break;
      }
    }
    if (open >= toks.size()) continue;
    const size_t close = MatchBraceForward(toks, open);
    if (close >= toks.size()) continue;

    // Nested classes are visited by this same loop when the scan reaches
    // their keyword; here their whole definition is one (exempt) member
    // statement of the enclosing class.
    const std::vector<MemberStmt> stmts =
        SplitMemberStatements(toks, open, close);
    bool holds_mutex = false;
    for (const MemberStmt& s : stmts) {
      if (IsMutexMember(toks, s)) {
        holds_mutex = true;
        break;
      }
    }
    if (!holds_mutex) continue;

    for (const MemberStmt& s : stmts) {
      if (IsExemptMember(toks, s)) continue;
      const std::string member = MemberName(toks, s);
      if (member.empty()) continue;
      Report(out, file, lexed.suppressions, toks[s.begin].line,
             kRuleUnannotatedGuard,
             "'" + (class_name.empty() ? std::string("<anonymous>")
                                       : class_name) +
                 "' holds a pgpub::Mutex but member '" + member +
                 "' has no PGPUB_GUARDED_BY — annotate it (or mark a "
                 "deliberate exception with allow(L9)) so "
                 "-Wthread-safety covers every field");
    }
  }
}

// ------------------------------------------------------------------- L10

/// Span names must be string literals: the Tracer keys its per-span
/// histogram cache (and the zero-allocation SpanRecord name field) on
/// literal pointer identity, so a runtime-built name fragments the
/// metrics and dangles once the buffer dies. Two shapes are checked:
///   PGPUB_TRACE_SPAN(<non-string>...)
///   [obs::]ScopedSpan <name>(<non-string>...)
void RunSpanLiteral(const std::string& file, const LexedFile& lexed,
                    const LintOptions& options, std::vector<Finding>* out) {
  if (PathExempt(file, options.span_literal_exempt)) return;
  const Tokens& toks = lexed.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    size_t open = toks.size();
    if (t.text == "PGPUB_TRACE_SPAN" && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "(")) {
      open = i + 1;
    } else if (t.text == "ScopedSpan" && i + 2 < toks.size() &&
               toks[i + 1].kind == TokenKind::kIdentifier &&
               IsPunct(toks[i + 2], "(")) {
      open = i + 2;
    } else {
      continue;
    }
    if (open + 1 < toks.size() && toks[open + 1].kind == TokenKind::kString) {
      continue;
    }
    Report(out, file, lexed.suppressions, t.line, kRuleSpanLiteral,
           "span name is not a string literal — the Tracer interns names "
           "by literal pointer identity, so build-once names must be "
           "literals (hoist dynamic detail into Attr() instead)");
  }
}

bool RuleEnabled(const LintOptions& options, const char* rule) {
  return options.enabled_rules.empty() ||
         options.enabled_rules.count(rule) > 0;
}

}  // namespace

std::vector<Finding> LintFile(const std::string& rel_path,
                              FileCategory category, const LexedFile& lexed,
                              const LintOptions& options) {
  std::vector<Finding> findings;
  if (category == FileCategory::kExempt) return findings;

  if (RuleEnabled(options, kRuleDiscardedStatus)) {
    RunDiscardedStatus(rel_path, lexed, options, &findings);
  }
  if (category == FileCategory::kLibrary) {
    if (RuleEnabled(options, kRuleUncheckedResult)) {
      RunUncheckedResult(rel_path, lexed, &findings);
    }
    if (RuleEnabled(options, kRuleCheckOnInputPath)) {
      RunCheckOnInputPath(rel_path, lexed, options, &findings);
    }
    if (RuleEnabled(options, kRuleDirectIo)) {
      RunDirectIo(rel_path, lexed, options, &findings);
    }
  }
  if (RuleEnabled(options, kRuleNondeterminism)) {
    RunNondeterminism(rel_path, lexed, options, &findings);
  }
  if (RuleEnabled(options, kRuleRawThread)) {
    RunRawThread(rel_path, lexed, options, &findings);
  }
  if (RuleEnabled(options, kRuleRawMutex)) {
    RunRawMutex(rel_path, lexed, options, &findings);
  }
  if (RuleEnabled(options, kRuleUnannotatedGuard)) {
    RunUnannotatedGuard(rel_path, lexed, &findings);
  }
  if (RuleEnabled(options, kRuleSpanLiteral)) {
    RunSpanLiteral(rel_path, lexed, options, &findings);
  }
  if (RuleEnabled(options, kRuleFloatEquality)) {
    RunFloatEquality(rel_path, lexed, options, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintSource(const std::string& rel_path,
                                FileCategory category,
                                const std::string& source,
                                const LintOptions& options) {
  const LexedFile lexed = Lex(source);
  LintOptions effective = options;
  HarvestStatusApis(lexed, &effective.status_apis);
  return LintFile(rel_path, category, lexed, effective);
}

}  // namespace pgpub::lint
