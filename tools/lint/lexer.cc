#include "lexer.h"

#include <cctype>

namespace pgpub::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators, longest first within each first-character
/// group. Three-character operators the rules could care about (`<<=`,
/// `>>=`, `...`, `->*`) are listed before their two-character prefixes.
const char* const kOperators[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  ".*",
};

/// Parses `pgpub-lint: allow(a, b)` directives out of a comment body and
/// records them for `line` (and `line + 1` when the comment stood alone).
void HarvestSuppressions(const std::string& comment, int line,
                         bool comment_only_line, Suppressions* out) {
  const std::string needle = "pgpub-lint:";
  size_t at = comment.find(needle);
  if (at == std::string::npos) return;
  at += needle.size();
  const size_t allow = comment.find("allow", at);
  if (allow == std::string::npos) return;
  const size_t open = comment.find('(', allow);
  if (open == std::string::npos) return;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return;

  std::string name;
  auto flush = [&] {
    if (!name.empty()) {
      out->by_line[line].insert(name);
      if (comment_only_line) out->by_line[line + 1].insert(name);
      name.clear();
    }
  };
  for (size_t i = open + 1; i < close; ++i) {
    const char c = comment[i];
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  flush();
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexedFile Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        line_has_code_ = false;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;  // line continuation
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && !line_has_code_) {
        LexPreprocessor();
        continue;
      }
      if (c == '"' || c == '\'') {
        LexStringOrChar(c);
        continue;
      }
      if (c == 'R' && Peek(1) == '"') {
        LexRawString();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(result_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, int line,
            bool is_float = false) {
    line_has_code_ = true;
    result_.tokens.push_back(Token{kind, std::move(text), line, is_float});
  }

  void LexLineComment() {
    const int line = line_;
    const bool comment_only = !line_has_code_;
    const size_t start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    HarvestSuppressions(src_.substr(start, pos_ - start), line, comment_only,
                        &result_.suppressions);
  }

  void LexBlockComment() {
    const int line = line_;
    const bool comment_only = !line_has_code_;
    const size_t start = pos_;
    pos_ += 2;
    while (pos_ < src_.size() &&
           !(src_[pos_] == '*' && Peek(1) == '/')) {
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    if (pos_ < src_.size()) pos_ += 2;
    HarvestSuppressions(src_.substr(start, pos_ - start), line, comment_only,
                        &result_.suppressions);
  }

  void LexPreprocessor() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        ++line_;
        pos_ += 2;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;
      // A trailing comment ends the directive for our purposes.
      if (c == '/' && (Peek(1) == '/' || Peek(1) == '*')) break;
      text.push_back(c);
      ++pos_;
    }
    Emit(TokenKind::kPreprocessor, std::move(text), line);
    line_has_code_ = false;  // the directive owns its line
  }

  void LexStringOrChar(char quote) {
    const int line = line_;
    std::string text(1, quote);
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '\n') ++line_;
        text.push_back(src_[pos_]);
        text.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') {
        ++line_;  // unterminated literal; keep going gracefully
      }
      text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) {
      text.push_back(quote);
      ++pos_;
    }
    Emit(TokenKind::kString, std::move(text), line);
  }

  void LexRawString() {
    const int line = line_;
    // R"delim( ... )delim"
    size_t p = pos_ + 2;
    std::string delim;
    while (p < src_.size() && src_[p] != '(') delim.push_back(src_[p++]);
    const std::string closer = ")" + delim + "\"";
    const size_t body = p < src_.size() ? p + 1 : p;
    size_t end = src_.find(closer, body);
    if (end == std::string::npos) end = src_.size();
    for (size_t i = pos_; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') ++line_;
    }
    const size_t stop =
        end == src_.size() ? end : end + closer.size();
    Emit(TokenKind::kString, src_.substr(pos_, stop - pos_), line);
    pos_ = stop;
  }

  void LexIdentifier() {
    const int line = line_;
    const size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    Emit(TokenKind::kIdentifier, src_.substr(start, pos_ - start), line);
  }

  void LexNumber() {
    const int line = line_;
    const size_t start = pos_;
    bool is_float = false;
    const bool hex = src_[pos_] == '0' && (Peek(1) == 'x' || Peek(1) == 'X');
    if (hex) pos_ += 2;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '\'') {
        if (!hex && (c == 'e' || c == 'E') &&
            (Peek(1) == '+' || Peek(1) == '-')) {
          is_float = true;
          pos_ += 2;
          continue;
        }
        if (!hex && (c == 'e' || c == 'E')) is_float = true;
        if (!hex && (c == 'f' || c == 'F')) is_float = true;
        if (hex && (c == 'p' || c == 'P')) is_float = true;
        ++pos_;
        continue;
      }
      if (c == '.') {
        is_float = true;
        ++pos_;
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, src_.substr(start, pos_ - start), line,
         is_float);
  }

  void LexPunct() {
    const int line = line_;
    for (const char* op : kOperators) {
      const size_t n = std::char_traits<char>::length(op);
      if (src_.compare(pos_, n, op) == 0) {
        Emit(TokenKind::kPunct, op, line);
        pos_ += n;
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, src_[pos_]), line);
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool line_has_code_ = false;
  LexedFile result_;
};

}  // namespace

LexedFile Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace pgpub::lint
