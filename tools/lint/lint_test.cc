#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "lexer.h"

namespace pgpub::lint {
namespace {

std::vector<Finding> RunLint(const std::string& source,
                         FileCategory category = FileCategory::kLibrary,
                         LintOptions options = LintOptions()) {
  return LintSource("src/fixture.cc", category, source, options);
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                int line) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule && f.line == line;
                     });
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenizesIdentifiersNumbersAndOperators) {
  const LexedFile lexed = Lex("int x = 3; double y = 2.5e-1; x != 0x1p3;");
  ASSERT_GE(lexed.tokens.size(), 10u);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].kind, TokenKind::kIdentifier);
  const auto num = std::find_if(lexed.tokens.begin(), lexed.tokens.end(),
                                [](const Token& t) { return t.text == "3"; });
  ASSERT_NE(num, lexed.tokens.end());
  EXPECT_FALSE(num->is_float);
  const auto flt = std::find_if(
      lexed.tokens.begin(), lexed.tokens.end(),
      [](const Token& t) { return t.text == "2.5e-1"; });
  ASSERT_NE(flt, lexed.tokens.end());
  EXPECT_TRUE(flt->is_float);
  const auto hexf = std::find_if(
      lexed.tokens.begin(), lexed.tokens.end(),
      [](const Token& t) { return t.text == "0x1p3"; });
  ASSERT_NE(hexf, lexed.tokens.end());
  EXPECT_TRUE(hexf->is_float);
}

TEST(LexerTest, CommentsAndStringsDoNotProduceIdentifierTokens) {
  const LexedFile lexed = Lex(
      "// std::rand() in a comment\n"
      "/* time(nullptr) in a block */\n"
      "const char* s = \"std::rand()\";\n");
  for (const Token& t : lexed.tokens) {
    EXPECT_NE(t.text, "rand") << "line " << t.line;
    EXPECT_NE(t.text, "time") << "line " << t.line;
  }
}

TEST(LexerTest, TracksLineNumbersAcrossConstructs) {
  const LexedFile lexed = Lex(
      "int a;\n"
      "/* multi\n   line */ int b;\n"
      "int c;\n");
  const auto find = [&](const char* name) {
    for (const Token& t : lexed.tokens) {
      if (t.text == name) return t.line;
    }
    return -1;
  };
  EXPECT_EQ(find("a"), 1);
  EXPECT_EQ(find("b"), 3);
  EXPECT_EQ(find("c"), 4);
}

TEST(LexerTest, HarvestsSuppressionsTrailingAndLeading) {
  const LexedFile lexed = Lex(
      "int a;  // pgpub-lint: allow(float-equality)\n"
      "// pgpub-lint: allow(nondeterminism, L1)\n"
      "int b;\n");
  EXPECT_TRUE(lexed.suppressions.Allows(1, "float-equality"));
  EXPECT_FALSE(lexed.suppressions.Allows(2, "float-equality"));
  // Comment-only line covers itself and the next line.
  EXPECT_TRUE(lexed.suppressions.Allows(3, "nondeterminism"));
  EXPECT_TRUE(lexed.suppressions.Allows(3, "L1"));
  EXPECT_FALSE(lexed.suppressions.Allows(4, "nondeterminism"));
}

TEST(LexerTest, AllowAllSuppressesEverything) {
  const LexedFile lexed = Lex("int a;  // pgpub-lint: allow(all)\n");
  EXPECT_TRUE(lexed.suppressions.Allows(1, "float-equality"));
  EXPECT_TRUE(lexed.suppressions.Allows(1, "nondeterminism"));
}

// ------------------------------------------------------- rule name mapping

TEST(RuleNameTest, ShortIdsMapToCanonicalNames) {
  EXPECT_EQ(CanonicalRuleName("L1"), kRuleDiscardedStatus);
  EXPECT_EQ(CanonicalRuleName("L2"), kRuleUncheckedResult);
  EXPECT_EQ(CanonicalRuleName("L3"), kRuleCheckOnInputPath);
  EXPECT_EQ(CanonicalRuleName("L4"), kRuleNondeterminism);
  EXPECT_EQ(CanonicalRuleName("L5"), kRuleFloatEquality);
  EXPECT_EQ(CanonicalRuleName("float-equality"), kRuleFloatEquality);
  EXPECT_EQ(CanonicalRuleName("L6"), kRuleDirectIo);
  EXPECT_EQ(CanonicalRuleName("io"), kRuleDirectIo);
  EXPECT_EQ(CanonicalRuleName("direct-io"), kRuleDirectIo);
  EXPECT_EQ(CanonicalRuleName("L7"), kRuleRawThread);
  EXPECT_EQ(CanonicalRuleName("thread"), kRuleRawThread);
  EXPECT_EQ(CanonicalRuleName("raw-thread"), kRuleRawThread);
  EXPECT_EQ(CanonicalRuleName("L8"), kRuleRawMutex);
  EXPECT_EQ(CanonicalRuleName("mutex"), kRuleRawMutex);
  EXPECT_EQ(CanonicalRuleName("raw-mutex"), kRuleRawMutex);
  EXPECT_EQ(CanonicalRuleName("L9"), kRuleUnannotatedGuard);
  EXPECT_EQ(CanonicalRuleName("unannotated-guard"), kRuleUnannotatedGuard);
  EXPECT_EQ(CanonicalRuleName("L10"), kRuleSpanLiteral);
  EXPECT_EQ(CanonicalRuleName("span"), kRuleSpanLiteral);
  EXPECT_EQ(CanonicalRuleName("span-name-literal"), kRuleSpanLiteral);
  EXPECT_EQ(CanonicalRuleName("bogus"), "");
}

TEST(CategoryTest, PathsMapToCategories) {
  EXPECT_EQ(CategorizeRelPath("src/core/validate.cc"),
            FileCategory::kLibrary);
  EXPECT_EQ(CategorizeRelPath("bench/micro_ops.cc"),
            FileCategory::kHarness);
  EXPECT_EQ(CategorizeRelPath("examples/quickstart.cpp"),
            FileCategory::kHarness);
  EXPECT_EQ(CategorizeRelPath("tests/attack_test.cc"),
            FileCategory::kExempt);
  EXPECT_EQ(CategorizeRelPath("build/generated.cc"), FileCategory::kExempt);
}

// ----------------------------------------------------- L1 discarded-status

constexpr char kStatusDecls[] =
    "Status Validate(const Table& t);\n"
    "Result<int> Parse(const std::string& s);\n";

TEST(DiscardedStatusTest, FlagsBareStatementCall) {
  const auto findings = RunLint(std::string(kStatusDecls) +
                            "void f(const Table& t) {\n"
                            "  Validate(t);\n"
                            "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleDiscardedStatus, 4));
}

TEST(DiscardedStatusTest, FlagsDiscardedMemberCall) {
  LintOptions options;
  options.status_apis.insert("Publish");
  const auto findings =
      RunLint("void f(Publisher& p, const Table& t) {\n"
          "  p.Publish(t);\n"
          "}\n",
          FileCategory::kLibrary, options);
  EXPECT_TRUE(HasFinding(findings, kRuleDiscardedStatus, 2));
}

TEST(DiscardedStatusTest, AcceptsAssignedReturnAndConditions) {
  const auto findings = RunLint(std::string(kStatusDecls) +
                            "Status g(const Table& t) {\n"
                            "  Status s = Validate(t);\n"
                            "  if (!Validate(t).ok()) return s;\n"
                            "  RETURN_IF_ERROR(Validate(t));\n"
                            "  return Validate(t);\n"
                            "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DiscardedStatusTest, FlagsDiscardInsideIfBody) {
  const auto findings = RunLint(std::string(kStatusDecls) +
                            "void f(const Table& t, bool retry) {\n"
                            "  if (retry) Validate(t);\n"
                            "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleDiscardedStatus, 4));
}

TEST(DiscardedStatusTest, VoidCastIsASanctionedDiscard) {
  const auto findings = RunLint(std::string(kStatusDecls) +
                            "void f(const Table& t) {\n"
                            "  (void)Validate(t);\n"
                            "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DiscardedStatusTest, SuppressibleWithAllowComment) {
  const auto findings =
      RunLint(std::string(kStatusDecls) +
          "void f(const Table& t) {\n"
          "  Validate(t);  // pgpub-lint: allow(discarded-status)\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DiscardedStatusTest, HarvestsQualifiedAndResultDeclarations) {
  const auto findings =
      RunLint("Result<std::vector<int>> Loader::LoadRows(const Path& p);\n"
          "void f(const Path& p) {\n"
          "  LoadRows(p);\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleDiscardedStatus, 3));
}

// ---------------------------------------------------- L2 unchecked-result

TEST(UncheckedResultTest, FlagsUnwrapWithoutCheck) {
  const auto findings =
      RunLint("int f(Result<int> r) {\n"
          "  return r.ValueOrDie();\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleUncheckedResult, 2));
}

TEST(UncheckedResultTest, AcceptsUnwrapAfterOkCheck) {
  const auto findings =
      RunLint("int f(Result<int> r) {\n"
          "  if (!r.ok()) return -1;\n"
          "  return r.ValueOrDie();\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(UncheckedResultTest, MoveUnwrapSeesThroughStdMove) {
  const auto findings =
      RunLint("int f(Result<int> candidate) {\n"
          "  if (candidate.ok()) {\n"
          "    return std::move(candidate).ValueOrDie();\n"
          "  }\n"
          "  return 0;\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(UncheckedResultTest, FlagsTemporaryUnwrap) {
  const auto findings =
      RunLint("Result<int> Parse(const std::string& s);\n"
          "int f(const std::string& s) {\n"
          "  return Parse(s).ValueOrDie();\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleUncheckedResult, 3));
}

TEST(UncheckedResultTest, NotAppliedToHarnessCode) {
  const auto findings =
      LintSource("bench/fixture.cc", FileCategory::kHarness,
                 "int f(Result<int> r) { return r.ValueOrDie(); }\n",
                 LintOptions());
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(UncheckedResultTest, SuppressibleWithShortId) {
  const auto findings =
      RunLint("int f(Result<int> r) {\n"
          "  return r.ValueOrDie();  // pgpub-lint: allow(L2)\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

// -------------------------------------------------- L3 check-on-input-path

TEST(CheckOnInputPathTest, FlagsCheckInUnlistedFile) {
  const auto findings =
      RunLint("void f(int k) {\n"
          "  PGPUB_CHECK_GT(k, 0) << \"k\";\n"
          "  PGPUB_CHECK(k < 100);\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleCheckOnInputPath, 2));
  EXPECT_TRUE(HasFinding(findings, kRuleCheckOnInputPath, 3));
}

TEST(CheckOnInputPathTest, AllowlistedFileIsExempt) {
  LintOptions options;
  options.check_allowlist.insert("src/fixture.cc");
  const auto findings =
      RunLint("void f(int k) { PGPUB_CHECK_GT(k, 0); }\n",
          FileCategory::kLibrary, options);
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(CheckOnInputPathTest, NotAppliedToHarnessCode) {
  const auto findings = LintSource(
      "bench/fixture.cc", FileCategory::kHarness,
      "void f(int k) { PGPUB_CHECK_GT(k, 0); }\n", LintOptions());
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(CheckOnInputPathTest, Suppressible) {
  const auto findings = RunLint(
      "void f(int k) {\n"
      "  // Invariant, not input: k was validated by the caller.\n"
      "  // pgpub-lint: allow(check-on-input-path)\n"
      "  PGPUB_CHECK_GT(k, 0);\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

// ------------------------------------------------------ L4 nondeterminism

TEST(NondeterminismTest, FlagsBannedEnginesAndCalls) {
  const auto findings =
      RunLint("#include <random>\n"
          "uint64_t f() {\n"
          "  std::random_device rd;\n"
          "  std::mt19937 gen(rd());\n"
          "  std::srand(42);\n"
          "  return std::rand() + time(nullptr);\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 3));
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 4));
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 5));
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 6));
}

TEST(NondeterminismTest, TimeAsMemberOrFieldIsFine) {
  const auto findings =
      RunLint("double f(const Stats& s) { return s.time(); }\n"
          "struct T { int time; };\n"
          "int g(const T& t) { return t.time; }\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(NondeterminismTest, AppliesToHarnessCodeToo) {
  const auto findings = LintSource(
      "bench/fixture.cc", FileCategory::kHarness,
      "int f() { return std::rand(); }\n", LintOptions());
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 1));
}

TEST(NondeterminismTest, RandomImplIsExempt) {
  const auto findings = LintSource(
      "src/common/random.h", FileCategory::kLibrary,
      "std::mt19937 LegacyEngine();\n", LintOptions());
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(NondeterminismTest, Suppressible) {
  const auto findings = RunLint(
      "int f() {\n"
      "  return std::rand();  // pgpub-lint: allow(nondeterminism)\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

// ------------------------------------------------------ L5 float-equality

TEST(FloatEqualityTest, FlagsComparisonWithFloatLiteral) {
  const auto findings =
      RunLint("bool f(double x) {\n"
          "  return x == 0.0;\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleFloatEquality, 2));
}

TEST(FloatEqualityTest, FlagsDeclaredDoubleOnEitherSide) {
  const auto findings =
      RunLint("bool f(int mask) {\n"
          "  double pivot = Compute();\n"
          "  return pivot != Other(mask);\n"
          "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleFloatEquality, 3));
}

TEST(FloatEqualityTest, FlagsNegatedLiteralRhs) {
  const auto findings = RunLint("bool f(double x) { return x == -1.0; }\n");
  EXPECT_TRUE(HasFinding(findings, kRuleFloatEquality, 1));
}

TEST(FloatEqualityTest, IntegerComparisonsAreFine) {
  const auto findings =
      RunLint("bool f(int a, int b) {\n"
          "  return a == b && a != 0;\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(FloatEqualityTest, PointerToDoubleComparisonIsFine) {
  const auto findings =
      RunLint("bool f(double* p) {\n"
          "  return p == nullptr;\n"
          "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(FloatEqualityTest, MathUtilIsExempt) {
  const auto findings = LintSource(
      "src/common/math_util.cc", FileCategory::kLibrary,
      "bool Exact(double a, double b) { return a == b; }\n", LintOptions());
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(FloatEqualityTest, Suppressible) {
  const auto findings = RunLint(
      "bool f(double x) {\n"
      "  // Sentinel compare: x is set to exactly -1.0, never computed.\n"
      "  // pgpub-lint: allow(float-equality)\n"
      "  return x == -1.0;\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

// ----------------------------------------------------------- L6 direct-io

TEST(DirectIoTest, FlagsCoutAndCerrInLibraryCode) {
  const auto findings = RunLint(
      "void f(int n) {\n"
      "  std::cout << n << \"\\n\";\n"
      "  std::cerr << \"warn\\n\";\n"
      "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleDirectIo, 2));
  EXPECT_TRUE(HasFinding(findings, kRuleDirectIo, 3));
}

TEST(DirectIoTest, HarnessCodeMayPrint) {
  const auto findings = RunLint(
      "int main() {\n"
      "  std::cout << \"table 3\\n\";\n"
      "}\n",
      FileCategory::kHarness);
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DirectIoTest, ObsLayerAndLoggingHeaderAreExempt) {
  const std::string source =
      "void Emit() { std::cerr << \"event\\n\"; }\n";
  EXPECT_TRUE(LintSource("src/obs/log.cc", FileCategory::kLibrary, source,
                         LintOptions())
                  .empty());
  EXPECT_TRUE(LintSource("src/common/logging.h", FileCategory::kLibrary,
                         source, LintOptions())
                  .empty());
  EXPECT_FALSE(LintSource("src/core/pg_publisher.cc", FileCategory::kLibrary,
                          source, LintOptions())
                   .empty());
}

TEST(DirectIoTest, MemberNamedCoutIsNotTheStream) {
  const auto findings = RunLint(
      "void f(Widget& w) {\n"
      "  w.cout << 1;\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DirectIoTest, SuppressibleWithIoShorthand) {
  const auto findings = RunLint(
      "void f() {\n"
      "  std::cerr << \"boot banner\\n\";  // pgpub-lint: allow(io)\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(DirectIoTest, SuppressibleWithShortId) {
  const auto findings = RunLint(
      "void f() {\n"
      "  std::cout << \"x\\n\";  // pgpub-lint: allow(L6)\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

// ---------------------------------------------------------- rule selection

TEST(RuleSelectionTest, EnabledRulesRestrictsTheRun) {
  LintOptions options;
  options.enabled_rules.insert(kRuleNondeterminism);
  const auto findings =
      RunLint("bool f(double x) {\n"
          "  std::srand(7);\n"
          "  return x == 0.0;\n"
          "}\n",
          FileCategory::kLibrary, options);
  EXPECT_TRUE(HasFinding(findings, kRuleNondeterminism, 2));
  EXPECT_FALSE(HasFinding(findings, kRuleFloatEquality, 3));
}

TEST(FindingsTest, SortedByLine) {
  const auto findings =
      RunLint("bool f(double x) {\n"
          "  std::srand(7);\n"
          "  return x == 0.0;\n"
          "}\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_LT(findings[0].line, findings[1].line);
}

// ----------------------------------------------------------- L7 raw-thread

TEST(RawThreadTest, FlagsThreadConstructionAndAsync) {
  const auto findings = RunLint(
      "void f() {\n"
      "  std::thread t([] {});\n"
      "  std::jthread j([] {});\n"
      "  auto fut = std::async([] { return 1; });\n"
      "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleRawThread, 2));
  EXPECT_TRUE(HasFinding(findings, kRuleRawThread, 3));
  EXPECT_TRUE(HasFinding(findings, kRuleRawThread, 4));
}

TEST(RawThreadTest, HardwareConcurrencyQueryIsLegal) {
  const auto findings = RunLint(
      "int n() { return std::thread::hardware_concurrency(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(RawThreadTest, UnqualifiedThreadNameIsNotTheStdType) {
  // A member or local merely *named* thread/async is unrelated.
  const auto findings = RunLint(
      "struct W { int thread; };\n"
      "void g(W w) { w.thread = 3; my::async(1); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(RawThreadTest, PoolImplementationDirectoryIsExempt) {
  const auto findings = LintSource(
      "src/common/parallel/thread_pool.cc", FileCategory::kLibrary,
      "void f() { std::thread t([] {}); }\n", LintOptions());
  EXPECT_TRUE(findings.empty());
}

TEST(RawThreadTest, AppliesToHarnessCodeToo) {
  const auto findings = LintSource(
      "bench/fixture.cc", FileCategory::kHarness,
      "void f() { std::thread t([] {}); }\n", LintOptions());
  EXPECT_TRUE(HasFinding(findings, kRuleRawThread, 1));
}

TEST(RawThreadTest, SuppressibleWithAllowThreadAndShortId) {
  const auto findings = RunLint(
      "void f() {\n"
      "  std::thread a([] {});  // pgpub-lint: allow(thread)\n"
      "  std::thread b([] {});  // pgpub-lint: allow(L7)\n"
      "  std::thread c([] {});  // pgpub-lint: allow(raw-thread)\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------ L8 raw-mutex

TEST(RawMutexTest, FlagsRawLockingPrimitives) {
  const auto findings = RunLint(
      "std::mutex mu;\n"
      "void f() {\n"
      "  std::lock_guard<std::mutex> lock(mu);\n"
      "  std::unique_lock<std::mutex> ul(mu);\n"
      "  std::condition_variable cv;\n"
      "  std::shared_mutex sm;\n"
      "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 1));
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 3));
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 4));
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 5));
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 6));
}

TEST(RawMutexTest, AnnotatedSyncLayerTypesAreLegal) {
  const auto findings = RunLint(
      "void f() {\n"
      "  Mutex mu(\"fixture\");\n"
      "  MutexLock lock(&mu);\n"
      "  CondVar cv;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(RawMutexTest, UnqualifiedMutexNameIsNotTheStdType) {
  const auto findings = RunLint(
      "struct W { int mutex; };\n"
      "void g(W w) { w.mutex = 3; my::lock_guard(1); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(RawMutexTest, SyncImplementationDirectoryIsExempt) {
  const auto findings = LintSource(
      "src/common/sync/mutex.cc", FileCategory::kLibrary,
      "void f() { std::mutex mu; std::condition_variable cv; }\n",
      LintOptions());
  EXPECT_TRUE(findings.empty());
}

TEST(RawMutexTest, AppliesToHarnessCodeToo) {
  const auto findings = LintSource(
      "bench/fixture.cc", FileCategory::kHarness,
      "void f() { std::mutex mu; }\n", LintOptions());
  EXPECT_TRUE(HasFinding(findings, kRuleRawMutex, 1));
}

TEST(RawMutexTest, SuppressibleWithAllowMutexAndShortId) {
  const auto findings = RunLint(
      "std::mutex a;  // pgpub-lint: allow(mutex)\n"
      "std::mutex b;  // pgpub-lint: allow(L8)\n"
      "std::mutex c;  // pgpub-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------- L9 unannotated-guard

TEST(UnannotatedGuardTest, FlagsBareFieldNextToMutex) {
  const auto findings = RunLint(
      "class Registry {\n"
      " public:\n"
      "  void Add();\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int count_ = 0;\n"
      "  std::map<int, int> entries_;\n"
      "};\n");
  EXPECT_TRUE(HasFinding(findings, kRuleUnannotatedGuard, 6));
  EXPECT_TRUE(HasFinding(findings, kRuleUnannotatedGuard, 7));
}

TEST(UnannotatedGuardTest, AnnotatedFieldsAreClean) {
  const auto findings = RunLint(
      "class Registry {\n"
      "  Mutex mu_{\"fixture\", 10};\n"
      "  CondVar cv_;\n"
      "  int count_ PGPUB_GUARDED_BY(mu_) = 0;\n"
      "  Entry* head_ PGPUB_PT_GUARDED_BY(mu_) = nullptr;\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, ImmutableStaticAndAtomicMembersAreExempt) {
  const auto findings = RunLint(
      "class Core {\n"
      "  Mutex mu_;\n"
      "  Registry* const registry_;\n"
      "  const Options options_;\n"
      "  static int shared_;\n"
      "  std::atomic<bool> stop_{false};\n"
      "  void Tick();\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, ClassWithoutMutexIsIgnored) {
  const auto findings = RunLint(
      "class Plain {\n"
      "  int count_ = 0;\n"
      "  std::string name_;\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, NestedTypeDefinitionsAreNotFields) {
  const auto findings = RunLint(
      "class Outer {\n"
      "  struct Snapshot {\n"
      "    int a = 0;\n"
      "    int b = 0;\n"
      "  };\n"
      "  enum class Mode { kA, kB };\n"
      "  Mutex mu_;\n"
      "  int guarded_ PGPUB_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, InlineFunctionBodiesAreNotFields) {
  const auto findings = RunLint(
      "class Core {\n"
      "  int queued() const { int local = 3; return local; }\n"
      "  Mutex mu_;\n"
      "  int queue_ PGPUB_GUARDED_BY(mu_) = 0;\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, SuppressibleWithShortId) {
  const auto findings = RunLint(
      "class Core {\n"
      "  Mutex mu_;\n"
      "  std::thread worker_;  // pgpub-lint: allow(L9, thread)\n"
      "};\n");
  EXPECT_TRUE(findings.empty());
}

TEST(UnannotatedGuardTest, ReportsClassAndMemberName) {
  const auto findings = RunLint(
      "class Registry {\n"
      "  Mutex mu_;\n"
      "  int count_ = 0;\n"
      "};\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'Registry'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'count_'"), std::string::npos);
}

// ------------------------------------------------- L10 span-name-literal

TEST(SpanLiteralTest, FlagsDynamicSpanNames) {
  const auto findings = RunLint(
      "void Serve(const std::string& phase) {\n"
      "  obs::ScopedSpan span(phase.c_str());\n"
      "  PGPUB_TRACE_SPAN(phase.c_str());\n"
      "}\n");
  EXPECT_TRUE(HasFinding(findings, kRuleSpanLiteral, 2));
  EXPECT_TRUE(HasFinding(findings, kRuleSpanLiteral, 3));
}

TEST(SpanLiteralTest, LiteralSpanNamesAreClean) {
  const auto findings = RunLint(
      "void Serve() {\n"
      "  obs::ScopedSpan span(\"server.dispatch\");\n"
      "  span.Attr(\"tenant\", tenant);\n"
      "  PGPUB_TRACE_SPAN(\"server.publish\");\n"
      "}\n");
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, kRuleSpanLiteral) << "line " << f.line;
  }
}

TEST(SpanLiteralTest, TracerImplementationIsExempt) {
  const auto findings = LintSource(
      "src/obs/trace.cc", FileCategory::kLibrary,
      "ScopedSpan MakeSpan(const char* name) {\n"
      "  return ScopedSpan span(name);\n"
      "}\n",
      LintOptions());
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, kRuleSpanLiteral) << "line " << f.line;
  }
}

TEST(SpanLiteralTest, SuppressibleWithShortIdAndShorthand) {
  const auto findings = RunLint(
      "void Serve(const char* name) {\n"
      "  obs::ScopedSpan a(name);  // pgpub-lint: allow(L10)\n"
      "  obs::ScopedSpan b(name);  // pgpub-lint: allow(span)\n"
      "}\n");
  for (const Finding& f : findings) {
    EXPECT_NE(f.rule, kRuleSpanLiteral) << "line " << f.line;
  }
}

TEST(SpanLiteralTest, AppliesToHarnessCodeToo) {
  const auto findings = LintSource(
      "bench/fixture.cc", FileCategory::kHarness,
      "int main() {\n"
      "  obs::ScopedSpan span(BuildName());\n"
      "}\n",
      LintOptions());
  EXPECT_TRUE(HasFinding(findings, kRuleSpanLiteral, 2));
}

}  // namespace
}  // namespace pgpub::lint
