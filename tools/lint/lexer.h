#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pgpub::lint {

/// Token categories the rules care about. The lexer is deliberately
/// coarse — it understands just enough C++ to track statement structure,
/// identifiers, literals, and comments, without a preprocessor or AST.
enum class TokenKind {
  kIdentifier,   ///< Identifiers and keywords (rules tell them apart).
  kNumber,       ///< Integer or floating literal.
  kString,       ///< String or character literal (contents opaque).
  kPunct,        ///< Operators and punctuation, longest-match.
  kPreprocessor  ///< A whole `#...` directive line (continuations folded).
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;            ///< 1-based line of the token's first character.
  bool is_float = false;   ///< kNumber only: literal has '.', exponent or
                           ///< f/F suffix (i.e. a floating literal).
};

/// Per-line lint suppressions harvested from comments:
///   // pgpub-lint: allow(rule-a, rule-b)
/// A suppression on a line with code applies to that line; a suppression
/// on a comment-only line applies to the *next* line as well, so both
/// trailing and leading comment styles work. The special rule name `all`
/// suppresses every rule.
struct Suppressions {
  /// line -> set of rule names allowed on that line.
  std::map<int, std::set<std::string>> by_line;

  bool Allows(int line, const std::string& rule) const {
    auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    return it->second.count(rule) > 0 || it->second.count("all") > 0;
  }
};

/// Result of lexing one translation unit.
struct LexedFile {
  std::vector<Token> tokens;
  Suppressions suppressions;
};

/// Tokenizes C++ source text. Comments and whitespace are consumed (the
/// `pgpub-lint: allow(...)` directives inside comments are captured into
/// `suppressions`); raw strings, char literals, digit separators and line
/// continuations are handled. Never fails: unrecognized bytes become
/// single-character punct tokens.
LexedFile Lex(const std::string& source);

}  // namespace pgpub::lint
