#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace pgpub::lint {

/// One diagnostic. `rule` is the canonical kebab-case rule name.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// The ten project invariants, by canonical name. Suppression comments
/// accept either the canonical name or the short id (L1..L10):
///
///   L1 discarded-status     — a call to a Status/Result-returning function
///                             whose return value is discarded.
///   L2 unchecked-result     — Result unwrap (`ValueOrDie`) with no
///                             preceding ok()/status() check of the same
///                             object, or an unwrap of an unnamed
///                             temporary.
///   L3 check-on-input-path  — PGPUB_CHECK* in a src/ file that is not on
///                             the CHECK allowlist (user-reachable code
///                             must fail closed with Status instead).
///   L4 nondeterminism       — RNG or wall-clock primitives not routed
///                             through common/random.h (std::rand,
///                             std::random_device, default-seeded engines,
///                             time(), ...). Breaks bit-for-bit
///                             reproducibility of the experiments.
///   L5 float-equality       — exact ==/!= on doubles outside math_util.
///   L6 direct-io            — std::cout/std::cerr writes in src/ outside
///                             the observability layer (src/obs/) and the
///                             CHECK macro plumbing (common/logging.h).
///                             Library code must report through the
///                             structured logger so runs stay
///                             machine-readable. Suppression also accepts
///                             the shorthand allow(io).
///   L7 raw-thread           — std::thread / std::jthread / std::async
///                             outside src/common/parallel/. Ad-hoc
///                             threading bypasses the deterministic
///                             ParallelFor contract (fixed chunking,
///                             ordered error selection, nested-region
///                             rejection) that the differential tests
///                             rely on; all parallelism must go through
///                             the pool. `std::thread::hardware_concurrency`
///                             (a query, not a spawn) stays legal.
///                             Suppression also accepts allow(thread).
///   L8 raw-mutex            — std::mutex / std::lock_guard /
///                             std::unique_lock / std::condition_variable
///                             (and friends) outside src/common/sync/.
///                             Raw primitives carry no capability
///                             annotations, so Clang -Wthread-safety and
///                             the lock-order detector are blind to them;
///                             use pgpub::Mutex / MutexLock / CondVar.
///                             Suppression also accepts allow(mutex).
///   L9 unannotated-guard    — a class that declares a pgpub::Mutex member
///                             but has other mutable data members without
///                             PGPUB_GUARDED_BY / PGPUB_PT_GUARDED_BY.
///                             Unannotated fields silently escape the
///                             -Wthread-safety proof; annotate them or
///                             mark the deliberate exceptions (atomics
///                             are recognized automatically).
///   L10 span-name-literal   — a ScopedSpan constructed (or
///                             PGPUB_TRACE_SPAN invoked) with a
///                             non-literal first argument. The Tracer
///                             interns span names by string-literal
///                             pointer identity, so a runtime-built name
///                             would silently fragment the per-span
///                             histograms and defeat the no-allocation
///                             hot path; span names must be literals.
///                             Suppression also accepts allow(span).
extern const char* const kRuleDiscardedStatus;
extern const char* const kRuleUncheckedResult;
extern const char* const kRuleCheckOnInputPath;
extern const char* const kRuleNondeterminism;
extern const char* const kRuleFloatEquality;
extern const char* const kRuleDirectIo;
extern const char* const kRuleRawThread;
extern const char* const kRuleRawMutex;
extern const char* const kRuleUnannotatedGuard;
extern const char* const kRuleSpanLiteral;

/// Maps "L1".."L10" (or "io"/"thread"/"mutex"/"span", or a canonical
/// name) to the canonical name; returns an empty string for unknown rules.
std::string CanonicalRuleName(const std::string& name_or_id);

/// Where a file sits in the tree; decides which rules apply.
///   kLibrary   (src/)      — all rules.
///   kHarness   (bench/, examples/) — all but L2/L3: those trees use the
///                            documented die-on-error unwrap idiom and are
///                            not user-reachable input paths.
///   kExempt    — not scanned (tests/, build/, third-party).
enum class FileCategory { kLibrary, kHarness, kExempt };

/// Classifies a path relative to the repo root ("src/core/foo.cc").
FileCategory CategorizeRelPath(const std::string& rel_path);

struct LintOptions {
  /// Function names known to return Status or Result<T> (L1). Filled by
  /// HarvestStatusApis; callers may inject extra names.
  std::set<std::string> status_apis;

  /// Relative paths (as written in the allowlist file) where PGPUB_CHECK
  /// remains acceptable — internal invariant layers (L3).
  std::set<std::string> check_allowlist;

  /// Relative paths exempt from L4 (the deterministic RNG implementation
  /// itself) and L5 (the float-comparison utility layer).
  std::set<std::string> nondeterminism_exempt = {"src/common/random.h",
                                                 "src/common/random.cc"};
  std::set<std::string> float_eq_exempt = {"src/common/math_util.h",
                                           "src/common/math_util.cc"};

  /// Paths exempt from L6. An entry ending in '/' matches as a directory
  /// prefix; anything else matches the relative path exactly. The logger
  /// sinks themselves and the CHECK-failure printer legitimately write to
  /// the raw streams.
  std::set<std::string> direct_io_exempt = {"src/obs/",
                                            "src/common/logging.h"};

  /// Paths exempt from L7 (same matching as direct_io_exempt): the pool
  /// implementation is the one place allowed to spawn raw threads.
  std::set<std::string> raw_thread_exempt = {"src/common/parallel/"};

  /// Paths exempt from L8 (same matching as direct_io_exempt): the
  /// annotated sync layer wraps the raw primitives once, here.
  std::set<std::string> raw_mutex_exempt = {"src/common/sync/"};

  /// Paths exempt from L10 (same matching as direct_io_exempt): the
  /// tracer's own declaration (and its constructor forwarding) names the
  /// parameter, not a span.
  std::set<std::string> span_literal_exempt = {"src/obs/"};

  /// Rules to run (canonical names). Empty = all ten.
  std::set<std::string> enabled_rules;
};

/// Scans one lexed file for declarations of Status/Result-returning
/// functions and adds their names to `out` (pass 1 of the tool).
void HarvestStatusApis(const LexedFile& lexed, std::set<std::string>* out);

/// Runs every applicable rule over one file. `rel_path` is the
/// repo-relative path used for policy (allowlists, exemptions) and for
/// reporting; `category` usually comes from CategorizeRelPath.
std::vector<Finding> LintFile(const std::string& rel_path,
                              FileCategory category, const LexedFile& lexed,
                              const LintOptions& options);

/// Convenience for tests and the CLI: lex `source` and lint it.
std::vector<Finding> LintSource(const std::string& rel_path,
                                FileCategory category,
                                const std::string& source,
                                const LintOptions& options);

}  // namespace pgpub::lint
