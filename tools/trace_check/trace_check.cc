/// \file trace_check.cc
/// Validates a Chrome Trace Event JSON file as written by
/// obs::WriteChromeTrace: event shape, span linkage (every non-zero
/// parent_id resolves inside the same trace), and parent/child interval
/// containment. CI's trace-smoke job runs this over the artifact a
/// two-tenant pgpubd --trace run produces, so a broken exporter or a
/// span that lost its parent fails the build instead of shipping an
/// unloadable trace.
///
/// Usage:
///   trace_check [--slack-us=N] [--require-span=NAME ...]
///               [--require-attr=SPAN:KEY=VALUE ...] FILE
///
///   --slack-us=N         containment slack in microseconds (default
///                        5000). Children may spill past their parent by
///                        this much: server.admit legitimately starts
///                        before the root span it links to, because the
///                        root's clock starts at admission inside the
///                        queue lock.
///   --require-span=NAME  fail unless at least one event has this name.
///   --require-attr=S:K=V fail unless at least one event named S carries
///                        args member K rendering as V (strings compare
///                        raw, other kinds by compact JSON).
///
/// Exit: 0 valid, 1 validation failure, 2 usage or I/O problem.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace pgpub {
namespace {

using obs::JsonValue;

struct RequiredAttr {
  std::string span;
  std::string key;
  std::string value;
};

struct Options {
  double slack_us = 5000.0;
  std::vector<std::string> required_spans;
  std::vector<RequiredAttr> required_attrs;
  std::string path;
};

struct Interval {
  double start_us = 0.0;
  double end_us = 0.0;
  std::string name;
};

/// Renders an args member the way --require-attr expects: raw for
/// strings, compact JSON for everything else ("true", "42", ...).
std::string RenderValue(const JsonValue& v) {
  if (v.is_string()) {
    auto s = v.AsString();
    return s.ok() ? *s : std::string();
  }
  return v.Dump();
}

bool ParseRequiredAttr(const std::string& spec, RequiredAttr* out) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  const size_t eq = spec.find('=', colon + 1);
  if (eq == std::string::npos || eq == colon + 1) return false;
  out->span = spec.substr(0, colon);
  out->key = spec.substr(colon + 1, eq - colon - 1);
  out->value = spec.substr(eq + 1);
  return true;
}

uint64_t IdOf(const JsonValue& args, const char* key) {
  const JsonValue* v = args.Find(key);
  if (v == nullptr || !v->is_integer()) return 0;
  auto id = v->AsUint64();
  return id.ok() ? *id : 0;
}

int Run(const Options& options) {
  std::ifstream in(options.path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot open %s\n",
                 options.path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace_check: %s: %s\n", options.path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const JsonValue& doc = *parsed;
  const JsonValue* events = doc.is_object() ? doc.Find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace_check: %s: no traceEvents array\n",
                 options.path.c_str());
    return 1;
  }

  int problems = 0;
  auto complain = [&](size_t index, const std::string& what) {
    std::fprintf(stderr, "trace_check: event %zu: %s\n", index, what.c_str());
    ++problems;
  };

  // Pass 1: per-event shape, and index spans by (trace_id, span_id).
  std::map<std::pair<uint64_t, uint64_t>, Interval> spans;
  for (size_t i = 0; i < events->items().size(); ++i) {
    const JsonValue& event = events->items()[i];
    if (!event.is_object()) {
      complain(i, "not an object");
      continue;
    }
    const JsonValue* name = event.Find("name");
    const JsonValue* ph = event.Find("ph");
    const JsonValue* ts = event.Find("ts");
    if (name == nullptr || !name->is_string()) complain(i, "missing name");
    if (ph == nullptr || !ph->is_string()) complain(i, "missing ph");
    if (ts == nullptr || !ts->is_number()) complain(i, "missing ts");
    for (const char* key : {"pid", "tid"}) {
      const JsonValue* v = event.Find(key);
      if (v == nullptr || !v->is_integer()) {
        complain(i, std::string("missing integer ") + key);
      }
    }
    if (ph == nullptr || !ph->is_string() ||
        *ph->AsString() != "X") {
      continue;  // only complete events carry dur and span linkage
    }
    const JsonValue* dur = event.Find("dur");
    if (dur == nullptr || !dur->is_number()) {
      complain(i, "complete event lacks dur");
      continue;
    }
    const JsonValue* args = event.Find("args");
    if (args == nullptr || !args->is_object()) {
      complain(i, "complete event lacks args");
      continue;
    }
    const uint64_t trace_id = IdOf(*args, "trace_id");
    const uint64_t span_id = IdOf(*args, "span_id");
    if (trace_id == 0 || span_id == 0) {
      complain(i, "args lack trace_id/span_id");
      continue;
    }
    Interval interval;
    interval.start_us = ts->AsDouble().ok() ? *ts->AsDouble() : 0.0;
    interval.end_us =
        interval.start_us + (dur->AsDouble().ok() ? *dur->AsDouble() : 0.0);
    interval.name = name != nullptr && name->is_string()
                        ? *name->AsString()
                        : std::string();
    if (interval.end_us < interval.start_us) complain(i, "negative dur");
    spans[{trace_id, span_id}] = std::move(interval);
  }

  // Pass 2: linkage and containment.
  for (size_t i = 0; i < events->items().size(); ++i) {
    const JsonValue& event = events->items()[i];
    if (!event.is_object()) continue;
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string() || *ph->AsString() != "X") continue;
    const JsonValue* args = event.Find("args");
    if (args == nullptr || !args->is_object()) continue;
    const uint64_t trace_id = IdOf(*args, "trace_id");
    const uint64_t span_id = IdOf(*args, "span_id");
    const uint64_t parent_id = IdOf(*args, "parent_id");
    if (trace_id == 0 || span_id == 0 || parent_id == 0) continue;
    const auto parent = spans.find({trace_id, parent_id});
    if (parent == spans.end()) {
      complain(i, "parent_id " + std::to_string(parent_id) +
                      " has no span in trace " + std::to_string(trace_id));
      continue;
    }
    const Interval& child = spans[{trace_id, span_id}];
    if (child.start_us + options.slack_us < parent->second.start_us ||
        child.end_us > parent->second.end_us + options.slack_us) {
      complain(i, "span '" + child.name + "' [" +
                      std::to_string(child.start_us) + ", " +
                      std::to_string(child.end_us) + ")us escapes parent '" +
                      parent->second.name + "' [" +
                      std::to_string(parent->second.start_us) + ", " +
                      std::to_string(parent->second.end_us) +
                      ")us beyond slack");
    }
  }

  // Pass 3: required spans and attributes.
  for (const std::string& want : options.required_spans) {
    bool found = false;
    for (const auto& [ids, interval] : spans) {
      if (interval.name == want) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "trace_check: required span '%s' absent\n",
                   want.c_str());
      ++problems;
    }
  }
  for (const RequiredAttr& want : options.required_attrs) {
    bool found = false;
    for (const JsonValue& event : events->items()) {
      if (!event.is_object()) continue;
      const JsonValue* name = event.Find("name");
      if (name == nullptr || !name->is_string() ||
          *name->AsString() != want.span) {
        continue;
      }
      const JsonValue* args = event.Find("args");
      const JsonValue* v =
          args != nullptr && args->is_object() ? args->Find(want.key) : nullptr;
      if (v != nullptr && RenderValue(*v) == want.value) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "trace_check: no '%s' event carries %s=%s\n",
                   want.span.c_str(), want.key.c_str(), want.value.c_str());
      ++problems;
    }
  }

  if (problems > 0) {
    std::fprintf(stderr, "trace_check: %s: %d problem(s)\n",
                 options.path.c_str(), problems);
    return 1;
  }
  std::printf("trace_check: %s: OK (%zu events, %zu spans)\n",
              options.path.c_str(), events->items().size(), spans.size());
  return 0;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  pgpub::Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--slack-us=", 0) == 0) {
      options.slack_us = std::atof(arg.c_str() + std::strlen("--slack-us="));
      if (!(options.slack_us >= 0.0)) {
        std::fprintf(stderr, "trace_check: bad --slack-us '%s'\n",
                     arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--require-span=", 0) == 0) {
      options.required_spans.push_back(
          arg.substr(std::strlen("--require-span=")));
    } else if (arg.rfind("--require-attr=", 0) == 0) {
      pgpub::RequiredAttr attr;
      if (!pgpub::ParseRequiredAttr(
              arg.substr(std::strlen("--require-attr=")), &attr)) {
        std::fprintf(stderr, "trace_check: bad --require-attr '%s'\n",
                     arg.c_str());
        return 2;
      }
      options.required_attrs.push_back(std::move(attr));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--slack-us=N] [--require-span=NAME ...] "
                   "[--require-attr=SPAN:KEY=VALUE ...] FILE\n",
                   argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: %s [--slack-us=N] [--require-span=NAME ...] "
                 "[--require-attr=SPAN:KEY=VALUE ...] FILE\n",
                 argv[0]);
    return 2;
  }
  options.path = positional[0];
  return pgpub::Run(options);
}
