/// \file pgpubctl.cc
/// Minimal client for pgpubd's text control endpoint: joins its
/// arguments into one command line, sends it to 127.0.0.1:PORT, prints
/// the reply. Exit 0 when the reply is non-empty and not an "err ..."
/// line, 1 otherwise.
///
/// Usage: pgpubctl PORT COMMAND [ARG...]
///   pgpubctl 7070 HEALTH
///   pgpubctl 7070 PUBLISH census 42
///   pgpubctl 7070 BURST clinic 500

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s PORT COMMAND [ARG...]\n", argv[0]);
    return 2;
  }
  const int port = std::atoi(argv[1]);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "pgpubctl: bad port '%s'\n", argv[1]);
    return 2;
  }
  std::string line;
  for (int i = 2; i < argc; ++i) {
    if (!line.empty()) line += ' ';
    line += argv[i];
  }
  line += '\n';

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("pgpubctl: socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    std::perror("pgpubctl: connect");
    ::close(fd);
    return 1;
  }
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      std::perror("pgpubctl: send");
      ::close(fd);
      return 1;
    }
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string reply;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  std::fputs(reply.c_str(), stdout);
  if (reply.empty()) {
    std::fprintf(stderr, "pgpubctl: empty reply\n");
    return 1;
  }
  return reply.compare(0, 4, "err ") == 0 ? 1 : 0;
}
