#!/usr/bin/env bash
# Tracing smoke test for pgpubd: boots a two-tenant daemon with --trace,
# serves a few publishes per tenant, asserts the Prometheus exposition
# carries per-tenant labels, drains on SIGTERM, and then validates the
# Chrome Trace Event artifact with trace_check — span shape, parent
# linkage, interval containment, and the per-tenant attribution on the
# dispatch spans. CI runs this as the trace-smoke job and uploads the
# trace; it is also runnable locally:
#
#   tools/pgpubd/trace_smoke.sh build/tools/pgpubd/pgpubd \
#                               build/tools/pgpubd/pgpubctl \
#                               build/tools/trace_check/trace_check \
#                               /tmp/pgpubd_trace.json
set -euo pipefail

PGPUBD=${1:-build/tools/pgpubd/pgpubd}
PGPUBCTL=${2:-build/tools/pgpubd/pgpubctl}
TRACE_CHECK=${3:-build/tools/trace_check/trace_check}
TRACE_OUT=${4:-pgpubd_trace.json}

fail() { echo "trace_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$PGPUBD" ] || fail "missing $PGPUBD"
[ -x "$PGPUBCTL" ] || fail "missing $PGPUBCTL"
[ -x "$TRACE_CHECK" ] || fail "missing $TRACE_CHECK"

PORT_FILE=$(mktemp)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -f "$PORT_FILE"' EXIT

# Two tenants so the trace demonstrably separates attribution; a slow
# budget of 0.01ms ensures at least one slow-request WARN fires, proving
# the span-tree log path works end to end.
"$PGPUBD" --port=0 --port-file="$PORT_FILE" --queue-capacity=64 \
          --tenants=census:600,clinic:500 \
          --trace="$TRACE_OUT" --slow-ms=0.01 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "pgpubd died during startup"
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "pgpubd never wrote its port file"
PORT=$(cat "$PORT_FILE")
echo "trace_smoke: pgpubd on port $PORT"

for tenant in census clinic; do
  for seed in 3 5 7; do
    "$PGPUBCTL" "$PORT" PUBLISH "$tenant" "$seed" \
      | grep -q "^ok tenant=$tenant" || fail "PUBLISH $tenant/$seed failed"
  done
done

# The per-tenant instruments must be live while the daemon still runs.
PROM=$("$PGPUBCTL" "$PORT" PROM)
for tenant in census clinic; do
  echo "$PROM" | grep -q "^server_latency_us_count{tenant=\"$tenant\"}" \
    || fail "PROM missing per-tenant histogram for $tenant"
done

# Drain; the trace file is written after the last request completes.
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  fail "pgpubd did not exit cleanly on SIGTERM"
fi
trap 'rm -f "$PORT_FILE"' EXIT
[ -s "$TRACE_OUT" ] || fail "pgpubd wrote no trace to $TRACE_OUT"

"$TRACE_CHECK" \
  --require-span=server.request \
  --require-span=server.admit \
  --require-span=server.queue_wait \
  --require-span=server.dispatch \
  --require-span=engine.publish \
  --require-span=robust.publish \
  --require-span=publish.generalize \
  --require-attr='server.dispatch:tenant=census' \
  --require-attr='server.dispatch:tenant=clinic' \
  --require-attr='engine.publish:tenant=census' \
  --require-attr='publish.generalize:tenant=clinic' \
  "$TRACE_OUT" || fail "trace_check rejected $TRACE_OUT"

echo "trace_smoke: OK ($TRACE_OUT)"
