/// \file pgpubd_main.cc
/// pgpubd — the anti-corruption publication daemon (DESIGN.md §12).
///
/// Hosts one or more synthetic census datasets behind tenant keys and
/// serves them through the overload-safe ServerCore, with the text
/// control endpoint on 127.0.0.1. SIGTERM/SIGINT trigger a graceful
/// drain: admission stops, every queued request is answered, then the
/// process exits 0.
///
/// Usage:
///   pgpubd [--port=N] [--port-file=PATH] [--queue-capacity=N]
///          [--tenants=census:2000,clinic:1500,hospital:1000]
///          [--batch-seed=N] [--drain=finish|reject]
///          [--trace=PATH] [--slow-ms=N]
///
/// --port=0 (the default) binds an ephemeral port; --port-file writes
/// the bound port once listening, which is how scripts rendezvous.
/// --trace arms the in-process span collector and writes every span
/// collected over the daemon's lifetime to PATH as Chrome Trace Event
/// JSON (chrome://tracing / Perfetto) after the drain completes.
/// --slow-ms sets ServerOptions::slow_request_budget_ms: served requests
/// over the budget log their span tree and cache delta at WARN.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/sal.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "server/health_endpoint.h"
#include "server/server_core.h"
#include "server/tenant_registry.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct TenantSpec {
  std::string name;
  size_t rows = 0;
};

struct Flags {
  int port = 0;
  std::string port_file;
  size_t queue_capacity = 1024;
  uint64_t batch_seed = 0x5eed;
  std::string drain = "finish";
  std::string trace_path;
  double slow_ms = 0.0;
  std::vector<TenantSpec> tenants = {
      {"census", 2000}, {"clinic", 1500}, {"hospital", 1000}};
};

bool ParseTenants(const std::string& value, std::vector<TenantSpec>* out) {
  out->clear();
  size_t start = 0;
  while (start < value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    const std::string item = value.substr(start, comma - start);
    const size_t colon = item.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    TenantSpec spec;
    spec.name = item.substr(0, colon);
    spec.rows = static_cast<size_t>(std::atoll(item.c_str() + colon + 1));
    if (spec.rows == 0) return false;
    out->push_back(std::move(spec));
    start = comma + 1;
  }
  return !out->empty();
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value_of("--port")) {
      flags->port = std::atoi(v);
    } else if (const char* v = value_of("--port-file")) {
      flags->port_file = v;
    } else if (const char* v = value_of("--queue-capacity")) {
      flags->queue_capacity = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--batch-seed")) {
      flags->batch_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value_of("--drain")) {
      flags->drain = v;
    } else if (const char* v = value_of("--trace")) {
      flags->trace_path = v;
    } else if (const char* v = value_of("--slow-ms")) {
      flags->slow_ms = std::atof(v);
    } else if (const char* v = value_of("--tenants")) {
      if (!ParseTenants(v, &flags->tenants)) {
        std::fprintf(stderr, "pgpubd: bad --tenants spec '%s'\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "pgpubd: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  if (flags->drain != "finish" && flags->drain != "reject") {
    std::fprintf(stderr, "pgpubd: --drain must be finish|reject\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pgpub;           // NOLINT
  using namespace pgpub::server;   // NOLINT

  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  if (!flags.trace_path.empty()) {
    obs::Tracer::Global().Enable();
  }

  TenantRegistry registry(nullptr);
  for (size_t i = 0; i < flags.tenants.size(); ++i) {
    const TenantSpec& spec = flags.tenants[i];
    SalOptions sal_options;
    sal_options.num_rows = spec.rows;
    sal_options.seed = 1000 + static_cast<uint64_t>(i);
    Result<CensusDataset> dataset = GenerateSal(sal_options);
    if (!dataset.ok()) {
      std::fprintf(stderr, "pgpubd: tenant '%s': %s\n", spec.name.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    Status added =
        registry.AddTenant(spec.name, std::move(dataset->table),
                           std::move(dataset->taxonomies), TenantOptions{});
    if (!added.ok()) {
      std::fprintf(stderr, "pgpubd: tenant '%s': %s\n", spec.name.c_str(),
                   added.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "pgpubd: tenant '%s' (%zu rows)\n",
                 spec.name.c_str(), spec.rows);
  }

  ServerOptions server_options;
  server_options.queue_capacity = flags.queue_capacity;
  server_options.batch_seed = flags.batch_seed;
  server_options.slow_request_budget_ms = flags.slow_ms;
  server_options.drain_policy = flags.drain == "reject"
                                    ? ServerOptions::DrainPolicy::kReject
                                    : ServerOptions::DrainPolicy::kFinish;
  ServerCore core(&registry, server_options);
  if (Status st = core.Start(); !st.ok()) {
    std::fprintf(stderr, "pgpubd: %s\n", st.ToString().c_str());
    return 1;
  }

  HealthEndpoint endpoint(&core);
  if (Status st = endpoint.Start(flags.port); !st.ok()) {
    std::fprintf(stderr, "pgpubd: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "pgpubd: serving on 127.0.0.1:%d\n",
               endpoint.bound_port());
  if (!flags.port_file.empty()) {
    std::ofstream out(flags.port_file, std::ios::trunc);
    out << endpoint.bound_port() << "\n";
    if (!out) {
      std::fprintf(stderr, "pgpubd: cannot write %s\n",
                   flags.port_file.c_str());
      return 1;
    }
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "pgpubd: draining...\n");
  endpoint.Stop();
  core.Shutdown();
  if (!flags.trace_path.empty()) {
    // After the drain every admitted request's spans are final.
    const std::vector<obs::SpanRecord> spans =
        obs::Tracer::Global().TakeSnapshot();
    if (Status st = obs::WriteChromeTrace(spans, flags.trace_path);
        !st.ok()) {
      std::fprintf(stderr, "pgpubd: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "pgpubd: wrote %zu spans to %s\n", spans.size(),
                 flags.trace_path.c_str());
  }
  const auto stats = core.stats();
  std::fprintf(stderr,
               "pgpubd: drained; admitted=%llu completed=%llu "
               "rejected_full=%llu drained=%llu\n",
               static_cast<unsigned long long>(stats.admitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected_full),
               static_cast<unsigned long long>(stats.drained));
  return 0;
}
