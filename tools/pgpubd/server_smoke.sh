#!/usr/bin/env bash
# End-to-end smoke test for pgpubd: boots the daemon with a deliberately
# tiny queue, drives mixed-tenant load through pgpubctl until admission
# control visibly rejects, asserts the health counters, then checks that
# SIGTERM drains cleanly (exit 0). CI runs this as the server-smoke job;
# it is also runnable locally:
#
#   tools/pgpubd/server_smoke.sh build/tools/pgpubd/pgpubd \
#                                build/tools/pgpubd/pgpubctl
set -euo pipefail

PGPUBD=${1:-build/tools/pgpubd/pgpubd}
PGPUBCTL=${2:-build/tools/pgpubd/pgpubctl}

fail() { echo "server_smoke: FAIL: $*" >&2; exit 1; }

[ -x "$PGPUBD" ] || fail "missing $PGPUBD"
[ -x "$PGPUBCTL" ] || fail "missing $PGPUBCTL"

PORT_FILE=$(mktemp)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -f "$PORT_FILE"' EXIT

# Tiny queue: BURST must overflow it, proving rejects are typed, counted
# and non-silent rather than wedging the daemon.
"$PGPUBD" --port=0 --port-file="$PORT_FILE" --queue-capacity=4 \
          --tenants=census:600,clinic:500,hospital:400 &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "pgpubd died during startup"
  sleep 0.1
done
[ -s "$PORT_FILE" ] || fail "pgpubd never wrote its port file"
PORT=$(cat "$PORT_FILE")
echo "server_smoke: pgpubd on port $PORT"

"$PGPUBCTL" "$PORT" HEALTH | grep -q "^ok draining=0" \
  || fail "HEALTH not ok"

# One synchronous publish per tenant: every hosted dataset actually serves.
for tenant in census clinic hospital; do
  "$PGPUBCTL" "$PORT" PUBLISH "$tenant" 7 | grep -q "^ok tenant=$tenant" \
    || fail "PUBLISH $tenant did not serve"
done

# Mixed-tenant overload: far more requests than the queue holds.
for tenant in census clinic hospital; do
  "$PGPUBCTL" "$PORT" BURST "$tenant" 200 >/dev/null
done

STATS=$("$PGPUBCTL" "$PORT" STATS)
echo "$STATS" | sed 's/^/server_smoke: /'
get_stat() { echo "$STATS" | awk -v k="$1" '$1 == k {print $2}'; }

[ "$(get_stat server.rejected_full)" -gt 0 ] \
  || fail "expected rejected_full > 0 under overload"
[ "$(get_stat server.admitted)" -gt 0 ] || fail "expected admissions"
[ "$(get_stat server.completed)" -gt 0 ] || fail "expected completions"

# Prometheus exposition: every tenant that served must show up as a
# labeled latency histogram, with the TYPE comment emitted once.
PROM=$("$PGPUBCTL" "$PORT" PROM)
echo "$PROM" | grep -q '^# TYPE server_latency_us histogram' \
  || fail "PROM missing TYPE line for server_latency_us"
for tenant in census clinic hospital; do
  echo "$PROM" | grep -q "^server_latency_us_count{tenant=\"$tenant\"}" \
    || fail "PROM missing per-tenant latency histogram for $tenant"
  echo "$PROM" | grep -q "^server_requests{tenant=\"$tenant\"}" \
    || fail "PROM missing per-tenant request counter for $tenant"
done

# Unknown tenants fail closed (pgpubctl exits 1 on an err reply, so
# capture rather than pipe under pipefail).
NOSUCH=$("$PGPUBCTL" "$PORT" PUBLISH nosuch 1 || true)
echo "$NOSUCH" | grep -q "code=NotFound" \
  || fail "unknown tenant did not fail closed with NotFound"

"$PGPUBCTL" "$PORT" TENANTS | grep -q "tenant census .*breaker=closed" \
  || fail "TENANTS missing census breaker state"

# Graceful drain: SIGTERM answers everything still queued and exits 0.
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
  fail "pgpubd did not exit cleanly on SIGTERM"
fi
trap 'rm -f "$PORT_FILE"' EXIT
echo "server_smoke: OK"
