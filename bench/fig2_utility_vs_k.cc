/// \file fig2_utility_vs_k.cc
/// Regenerates Figure 2 of the paper: decision-tree classification error
/// versus k at p = 0.3, for m = 2 (Figure 2a) and m = 3 (Figure 2b), with
/// the *optimistic* (clean |D|/k subset) and *pessimistic* (fully
/// randomized subset) yardsticks.
///
/// Environment: SAL_N (rows, default 120000; the paper uses 700000),
/// SAL_RUNS (seeds averaged, default 3).

#include <cstdio>

#include "bench/bench_util.h"

using namespace pgpub;
using namespace pgpub::bench;

int main() {
  const size_t n = SalRows();
  std::printf("generating %zu census rows (SAL_N to change)...\n", n);
  CensusDataset census = GenerateCensus(n, 20080407).ValueOrDie();

  for (int m : {2, 3}) {
    std::printf("\n=== Figure 2%s: classification error vs k (p = 0.3, "
                "m = %d) ===\n",
                m == 2 ? "a" : "b", m);
    std::printf("%-4s %-12s %-12s %-12s\n", "k", "optimistic", "PG",
                "pessimistic");
    for (int k : {2, 4, 6, 8, 10}) {
      UtilityPoint point = AveragedUtilityPoint(census, 0.3, k, m);
      std::printf("%-4d %-12.4f %-12.4f %-12.4f\n", k,
                  point.optimistic_error, point.pg_error,
                  point.pessimistic_error);
    }
  }
  std::printf(
      "\nExpected shape (paper): PG tracks optimistic closely, degrades\n"
      "slowly as k grows, and stays far below pessimistic.\n");
  return 0;
}
