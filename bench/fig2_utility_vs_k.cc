/// \file fig2_utility_vs_k.cc
/// Regenerates Figure 2 of the paper: decision-tree classification error
/// versus k at p = 0.3, for m = 2 (Figure 2a) and m = 3 (Figure 2b), with
/// the *optimistic* (clean |D|/k subset) and *pessimistic* (fully
/// randomized subset) yardsticks.
///
/// Environment: SAL_N (rows, default 120000; the paper uses 700000),
/// SAL_RUNS (seeds averaged, default 3).

#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"

using namespace pgpub;
using namespace pgpub::bench;

int main() {
  const size_t n = SalRows();
  BenchReport report("fig2_utility_vs_k");
  report.SetParam("sal_n", n);
  report.SetParam("sal_runs", SalRuns());
  report.SetParam("p", 0.3);
  std::printf("generating %zu census rows (SAL_N to change)...\n", n);
  CensusDataset census = GenerateCensus(n, 20080407).ValueOrDie();

  for (int m : {2, 3}) {
    std::printf("\n=== Figure 2%s: classification error vs k (p = 0.3, "
                "m = %d) ===\n",
                m == 2 ? "a" : "b", m);
    std::printf("%-4s %-12s %-12s %-12s\n", "k", "optimistic", "PG",
                "pessimistic");
    for (int k : {2, 4, 6, 8, 10}) {
      UtilityPoint point = AveragedUtilityPoint(census, 0.3, k, m);
      std::printf("%-4d %-12.4f %-12.4f %-12.4f\n", k,
                  point.optimistic_error, point.pg_error,
                  point.pessimistic_error);
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("m", m);
      row.Set("k", k);
      row.Set("pg_error", point.pg_error);
      row.Set("optimistic_error", point.optimistic_error);
      row.Set("pessimistic_error", point.pessimistic_error);
      report.AddResult(std::move(row));
    }
  }
  std::printf(
      "\nExpected shape (paper): PG tracks optimistic closely, degrades\n"
      "slowly as k grows, and stays far below pessimistic.\n");
  return report.WriteAndLog() ? 0 : 1;
}
