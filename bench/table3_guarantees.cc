/// \file table3_guarantees.cc
/// Regenerates Table III of the paper — the privacy guarantees of PG
/// derived from Theorems 2 and 3 (lambda = 0.1, rho1 = 0.2, |U^s| = 50).
/// Closed-form: our values must match the paper's printed two-decimal
/// roundings exactly (the paper's k=10 / rho2 entry appears truncated
/// rather than rounded; we print four decimals next to each printed row).

#include <cstdio>

#include "bench/bench_report.h"
#include "core/guarantees.h"

using namespace pgpub;

namespace {

constexpr double kLambda = 0.1;
constexpr double kRho1 = 0.2;
constexpr int kUs = 50;

bool PrintRow(const char* label, double computed, double paper) {
  const bool ok = std::abs(computed - paper) <= 0.011;
  std::printf("  %-8s computed=%.4f  paper>=%.2f  %s\n", label, computed,
              paper, ok ? "OK" : "MISMATCH");
  return ok;
}

obs::JsonValue GuaranteeRow(const char* table, const PgParams& params,
                            double rho2, double paper_rho2, double delta,
                            double paper_delta, bool ok) {
  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("table", table);
  row.Set("p", params.p);
  row.Set("k", params.k);
  row.Set("rho2", rho2);
  row.Set("paper_rho2", paper_rho2);
  row.Set("delta", delta);
  row.Set("paper_delta", paper_delta);
  row.Set("match", ok);
  return row;
}

}  // namespace

int main() {
  bench::BenchReport report("table3_guarantees");
  report.SetParam("lambda", kLambda);
  report.SetParam("rho1", kRho1);
  report.SetParam("us", kUs);

  std::printf("=== Table III(a): guarantees of PG at p = 0.3 ===\n");
  const int ks[] = {2, 4, 6, 8, 10};
  const double paper_rho2_a[] = {0.69, 0.53, 0.45, 0.40, 0.36};
  const double paper_delta_a[] = {0.47, 0.31, 0.24, 0.19, 0.16};
  for (int i = 0; i < 5; ++i) {
    PgParams params{0.3, ks[i], kLambda, kUs};
    std::printf("k = %d\n", ks[i]);
    const double rho2 = MinRho2(params, kRho1);
    const double delta = MinDelta(params);
    bool ok = PrintRow("rho2", rho2, paper_rho2_a[i]);
    ok &= PrintRow("Delta", delta, paper_delta_a[i]);
    report.AddResult(GuaranteeRow("IIIa", params, rho2, paper_rho2_a[i],
                                  delta, paper_delta_a[i], ok));
  }

  std::printf("\n=== Table III(b): guarantees of PG at k = 6 ===\n");
  const double ps[] = {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
  const double paper_rho2_b[] = {0.34, 0.38, 0.41, 0.45, 0.49, 0.52, 0.56};
  const double paper_delta_b[] = {0.12, 0.16, 0.20, 0.24, 0.28, 0.32, 0.36};
  for (int i = 0; i < 7; ++i) {
    PgParams params{ps[i], 6, kLambda, kUs};
    std::printf("p = %.2f\n", ps[i]);
    const double rho2 = MinRho2(params, kRho1);
    const double delta = MinDelta(params);
    bool ok = PrintRow("rho2", rho2, paper_rho2_b[i]);
    ok &= PrintRow("Delta", delta, paper_delta_b[i]);
    report.AddResult(GuaranteeRow("IIIb", params, rho2, paper_rho2_b[i],
                                  delta, paper_delta_b[i], ok));
  }

  std::printf("\n=== Extension: combined rho2 bound (Thm 2 vs Thm 3 route) "
              "===\n");
  for (int i = 0; i < 5; ++i) {
    PgParams params{0.3, ks[i], kLambda, kUs};
    const double thm2 = MinRho2(params, kRho1);
    const double combined = CombinedMinRho2(params, kRho1);
    std::printf("k = %-2d  theorem2=%.4f  combined=%.4f\n", ks[i], thm2,
                combined);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("table", "combined");
    row.Set("p", params.p);
    row.Set("k", params.k);
    row.Set("theorem2_rho2", thm2);
    row.Set("combined_rho2", combined);
    report.AddResult(std::move(row));
  }
  return report.WriteAndLog() ? 0 : 1;
}
