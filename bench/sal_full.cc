/// \file sal_full.cc
/// The full-scale Section VII reproduction in one artifact: cold-publishes
/// the 700k-row SAL table end-to-end through the columnar Phase-2 engine
/// and emits Table III (closed-form guarantees) plus Figures 2–3 (utility
/// vs k and vs p) as one schema-v1 bench JSON with a tracked
/// publications/sec metric. The committed smoke baseline
/// (bench/baselines/BENCH_sal_full.json) runs the same harness at
/// PGPUB_SAL_ROWS=20000 so bench_diff can gate regressions in CI without
/// paying the full run; tests/sal_golden_test.cc pins the generator and
/// publication digests printed here.
///
/// Env knobs:
///   PGPUB_SAL_ROWS    table rows (default 700000 — the paper's scale)
///   PGPUB_SAL_RUNS    seeds per figure point (default 1; figures average
///                     the per-point median like fig2/fig3 do)
///   PGPUB_SAL_THREADS worker threads (0 = environment default)
///   PGPUB_SAL_ORACLE  1 = rerun the cold publication on the row-wise
///                     oracle engine and require byte equality (slow)
///   PGPUB_SAL_FIGS    0 = skip the Figure 2–3 sweeps (cold-path timing
///                     only; default 1)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "bench/sal_digest.h"
#include "common/parallel/thread_pool.h"
#include "core/guarantees.h"
#include "core/robust_publisher.h"
#include "datagen/sal.h"

namespace pgpub {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v >= 0) return static_cast<size_t>(v);
  }
  return fallback;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

using bench::Hex;
using bench::HistogramDigest;
using bench::PublicationDigest;
using bench::RowSampleDigest;

int Main() {
  const size_t rows = EnvSize("PGPUB_SAL_ROWS", 700000);
  const int threads = static_cast<int>(EnvSize("PGPUB_SAL_THREADS", 0));
  const bool oracle = EnvSize("PGPUB_SAL_ORACLE", 0) != 0;
  const bool figures = EnvSize("PGPUB_SAL_FIGS", 1) != 0;
  const int runs = static_cast<int>(EnvSize("PGPUB_SAL_RUNS", 1));
  // AveragedUtilityPoint reads SAL_RUNS; forward our knob unless the
  // caller already set the legacy one.
  if (std::getenv("SAL_RUNS") == nullptr) {
    ::setenv("SAL_RUNS", std::to_string(runs).c_str(), 1);
  }

  bench::BenchReport report("sal_full");
  report.SetParam("rows", static_cast<uint64_t>(rows));
  report.SetParam("threads", static_cast<uint64_t>(threads));
  report.SetParam("runs", static_cast<uint64_t>(runs));
  report.SetParam("oracle_leg", oracle);
  report.SetParam("figures", figures);
  report.SetParam("hardware_threads",
                  static_cast<uint64_t>(ThreadPool::DefaultNumThreads()));

  // ---- Generate the SAL table (seed 42, thread-invariant rows).
  SalOptions sal_options;
  sal_options.num_rows = rows;
  sal_options.seed = 42;
  sal_options.num_threads = threads;
  const uint64_t gen_t0 = NowNs();
  CensusDataset sal = GenerateSal(sal_options).ValueOrDie();
  const uint64_t gen_ns = NowNs() - gen_t0;
  const uint64_t sample_digest = RowSampleDigest(sal.table);
  const uint64_t histogram_digest = HistogramDigest(sal.table);
  report.SetParam("generate_ns", gen_ns);
  report.SetParam("row_sample_digest", Hex(sample_digest));
  report.SetParam("histogram_digest", Hex(histogram_digest));
  std::fprintf(stderr,
               "sal_full: generated %zu rows in %.2f s  sample=%s  hist=%s\n",
               rows, gen_ns / 1e9, Hex(sample_digest).c_str(),
               Hex(histogram_digest).c_str());

  const std::vector<const Taxonomy*> taxonomies = sal.TaxonomyPointers();

  // ---- Cold end-to-end publication (columnar Phase 2, no caches).
  auto cold_publish = [&](columnar::Phase2Impl impl, uint64_t* wall_ns) {
    PgOptions options = bench::SalColdPublishOptions(threads);
    options.phase2_impl = impl;
    const uint64_t t0 = NowNs();
    PublishedTable table =
        RobustPublisher(options).Publish(sal.table, taxonomies).ValueOrDie();
    *wall_ns = NowNs() - t0;
    return table;
  };

  uint64_t cold_ns = 0;
  const PublishedTable cold = cold_publish(columnar::Phase2Impl::kColumnar,
                                           &cold_ns);
  const uint64_t cold_digest = PublicationDigest(cold);
  {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("leg", "cold_publish");
    row.Set("phase2", "columnar");
    row.Set("rows_in", static_cast<uint64_t>(rows));
    row.Set("rows_out", static_cast<uint64_t>(cold.num_rows()));
    row.Set("wall_ns", cold_ns);
    row.Set("publications", uint64_t{1});
    row.Set("publications_per_sec", 1e9 / static_cast<double>(cold_ns));
    row.Set("publication_digest", Hex(cold_digest));
    report.AddResult(std::move(row));
  }
  std::fprintf(stderr,
               "sal_full: cold publication %.2f s (%.4f pub/s)  digest=%s\n",
               cold_ns / 1e9, 1e9 / static_cast<double>(cold_ns),
               Hex(cold_digest).c_str());

  if (oracle) {
    uint64_t oracle_ns = 0;
    const PublishedTable rowwise =
        cold_publish(columnar::Phase2Impl::kRowwise, &oracle_ns);
    const uint64_t oracle_digest = PublicationDigest(rowwise);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("leg", "oracle_publish");
    row.Set("phase2", "rowwise");
    row.Set("wall_ns", oracle_ns);
    row.Set("publications_per_sec", 1e9 / static_cast<double>(oracle_ns));
    row.Set("publication_digest", Hex(oracle_digest));
    row.Set("matches_columnar", oracle_digest == cold_digest);
    report.AddResult(std::move(row));
    std::fprintf(stderr, "sal_full: row-wise oracle %.2f s  digest=%s  %s\n",
                 oracle_ns / 1e9, Hex(oracle_digest).c_str(),
                 oracle_digest == cold_digest ? "MATCH" : "MISMATCH");
    if (oracle_digest != cold_digest) {
      std::fprintf(stderr,
                   "sal_full: columnar diverged from the row-wise oracle — "
                   "refusing to report timings for a wrong answer\n");
      return 1;
    }
  }

  // ---- Table III: the closed-form guarantees (lambda=0.1, rho1=0.2,
  // |U^s|=50), same grid as bench/table3_guarantees.
  constexpr double kLambda = 0.1;
  constexpr double kRho1 = 0.2;
  constexpr int kUs = 50;
  const int ks[] = {2, 4, 6, 8, 10};
  for (int k : ks) {
    PgParams params{0.3, k, kLambda, kUs};
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("table", "IIIa");
    row.Set("p", params.p);
    row.Set("k", params.k);
    row.Set("rho2", MinRho2(params, kRho1));
    row.Set("delta", MinDelta(params));
    report.AddResult(std::move(row));
  }
  const double ps[] = {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
  for (double p : ps) {
    PgParams params{p, 6, kLambda, kUs};
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("table", "IIIb");
    row.Set("p", params.p);
    row.Set("k", params.k);
    row.Set("rho2", MinRho2(params, kRho1));
    row.Set("delta", MinDelta(params));
    report.AddResult(std::move(row));
  }
  std::fprintf(stderr, "sal_full: Table III rows emitted\n");

  // ---- Figures 2–3: utility vs k (p = 0.3) and vs p (k = 6) on the SAL
  // table itself, m = 2 and 3, same grids as fig2/fig3.
  if (figures) {
    for (int m : {2, 3}) {
      for (int k : ks) {
        const bench::UtilityPoint point =
            bench::AveragedUtilityPoint(sal, 0.3, k, m);
        obs::JsonValue row = obs::JsonValue::Object();
        row.Set("figure", "fig2");
        row.Set("m", m);
        row.Set("k", k);
        row.Set("pg_error", point.pg_error);
        row.Set("optimistic_error", point.optimistic_error);
        row.Set("pessimistic_error", point.pessimistic_error);
        report.AddResult(std::move(row));
        std::fprintf(stderr,
                     "sal_full: fig2 m=%d k=%-2d  pg=%.4f opt=%.4f pes=%.4f\n",
                     m, k, point.pg_error, point.optimistic_error,
                     point.pessimistic_error);
      }
      for (double p : ps) {
        const bench::UtilityPoint point =
            bench::AveragedUtilityPoint(sal, p, 6, m);
        obs::JsonValue row = obs::JsonValue::Object();
        row.Set("figure", "fig3");
        row.Set("m", m);
        row.Set("p", p);
        row.Set("pg_error", point.pg_error);
        row.Set("optimistic_error", point.optimistic_error);
        row.Set("pessimistic_error", point.pessimistic_error);
        report.AddResult(std::move(row));
        std::fprintf(stderr,
                     "sal_full: fig3 m=%d p=%.2f  pg=%.4f opt=%.4f pes=%.4f\n",
                     m, p, point.pg_error, point.optimistic_error,
                     point.pessimistic_error);
      }
    }
  }

  return report.WriteAndLog() ? 0 : 1;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  const std::string trace = pgpub::bench::TraceFromArgs(argc, argv);
  const int rc = pgpub::Main();
  return pgpub::bench::FinishTrace(trace) ? rc : 1;
}
