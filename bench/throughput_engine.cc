/// \file throughput_engine.cc
/// Serving-throughput benchmark for engine::PublicationEngine (DESIGN.md
/// §10): how many publications/sec a SAL-scale dataset sustains when the
/// same request grid is served cold (one-shot RobustPublisher per request,
/// no caches) vs. warm (one engine, caches populated).
///
/// The grid sweeps k x generalizer with a solved-p ρ₁-to-ρ₂ target, so a
/// warm pass hits both engine caches (Phase-2 recoding + retention
/// fixpoint) and skips the O(rows) input screen. A built-in equality guard
/// re-checks that every warm release is byte-identical to its cold
/// counterpart before any timing is reported — a fast wrong answer is not
/// a speedup.
///
/// Emits BENCH_throughput_engine.json (schema_version 1) with one result
/// row per leg (cold / populate / warm), each carrying cache_hits,
/// cache_misses, cache_evictions and cache_hit_rate.
///
/// Env knobs: PGPUB_SAL_N (rows, default 700000), PGPUB_ENGINE_REPS
/// (warm passes, default 3), PGPUB_ENGINE_THREADS (0 = env default),
/// PGPUB_ENGINE_AUDIT (1 to re-audit every release in both legs; default
/// 0 benchmarks the raw serving path).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "common/parallel/thread_pool.h"
#include "core/robust_publisher.h"
#include "datagen/sal.h"
#include "engine/publication_engine.h"

namespace pgpub {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The request grid every leg serves: k x generalizer, solved-p target.
std::vector<engine::PublishRequest> MakeGrid() {
  std::vector<engine::PublishRequest> grid;
  uint64_t seed = 1000;
  for (const auto gen :
       {PgOptions::Generalizer::kTds, PgOptions::Generalizer::kIncognito}) {
    for (const int k : {4, 6, 8, 10}) {
      engine::PublishRequest request;
      request.options.k = k;
      request.options.generalizer = gen;
      request.options.p = -1.0;
      request.options.target.kind = PrivacyTarget::Kind::kRho;
      request.options.target.rho1 = 0.2;
      request.options.target.rho2 = 0.5;
      request.options.seed = seed++;
      grid.push_back(std::move(request));
    }
  }
  return grid;
}

/// Flattens a release into a comparable byte-identity witness.
std::vector<int32_t> Flatten(const PublishedTable& table) {
  std::vector<int32_t> flat;
  flat.reserve(table.num_rows() * (table.num_qi_attrs() + 2));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (int i = 0; i < table.num_qi_attrs(); ++i) {
      flat.push_back(table.qi_gen(r, i));
    }
    flat.push_back(table.sensitive(r));
    flat.push_back(static_cast<int32_t>(table.group_size(r)));
  }
  return flat;
}

struct Leg {
  std::string name;
  uint64_t wall_ns = 0;
  size_t publications = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;

  double PublicationsPerSec() const {
    return wall_ns > 0
               ? static_cast<double>(publications) * 1e9 /
                     static_cast<double>(wall_ns)
               : 0.0;
  }
  double CacheHitRate() const {
    const uint64_t lookups = cache_hits + cache_misses;
    return lookups > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(lookups)
               : 0.0;
  }
};

void AccumulateCache(const PublishReport& report, Leg* leg) {
  leg->cache_hits += report.cache.hits;
  leg->cache_misses += report.cache.misses;
  leg->cache_evictions += report.cache.evictions;
}

int Main() {
  const size_t n = EnvSize("PGPUB_SAL_N", 700000);
  const int reps = static_cast<int>(EnvSize("PGPUB_ENGINE_REPS", 3));
  const int threads =
      static_cast<int>(EnvSize("PGPUB_ENGINE_THREADS", 0));
  const bool audit = EnvSize("PGPUB_ENGINE_AUDIT", 0) != 0;

  bench::BenchReport report("throughput_engine");
  report.SetParam("rows", static_cast<uint64_t>(n));
  report.SetParam("reps", static_cast<uint64_t>(reps));
  report.SetParam("threads", static_cast<uint64_t>(threads));
  report.SetParam("audit_release", audit);
  report.SetParam("hardware_threads",
                  static_cast<uint64_t>(ThreadPool::DefaultNumThreads()));

  SalOptions sal_options;
  sal_options.num_rows = n;
  sal_options.num_threads = threads;
  CensusDataset sal = GenerateSal(sal_options).ValueOrDie();
  const std::vector<engine::PublishRequest> grid = MakeGrid();
  report.SetParam("grid_size", static_cast<uint64_t>(grid.size()));

  RobustPublishOptions robust;
  robust.audit_release = audit;

  // ---- Cold leg: one-shot RobustPublisher per request, no caches.
  Leg cold{"cold"};
  std::vector<std::vector<int32_t>> cold_outputs;
  {
    const std::vector<const Taxonomy*> taxonomies = sal.TaxonomyPointers();
    const uint64_t t0 = NowNs();
    for (const engine::PublishRequest& request : grid) {
      PgOptions options = request.options;
      options.num_threads = threads;
      PublishReport publish_report;
      const PublishedTable table =
          RobustPublisher(options, robust)
              .Publish(sal.table, taxonomies, &publish_report)
              .ValueOrDie();
      cold_outputs.push_back(Flatten(table));
      AccumulateCache(publish_report, &cold);
    }
    cold.wall_ns = NowNs() - t0;
    cold.publications = grid.size();
  }

  // ---- Engine: pass 1 populates the caches, passes 2..reps+1 are warm.
  engine::EngineOptions engine_options;
  engine_options.num_threads = threads;
  engine_options.robust = robust;
  std::unique_ptr<engine::PublicationEngine> eng =
      engine::PublicationEngine::Create(std::move(sal.table),
                                        std::move(sal.taxonomies),
                                        engine_options)
          .ValueOrDie();

  auto serve_pass = [&](Leg* leg) {
    const uint64_t t0 = NowNs();
    for (size_t i = 0; i < grid.size(); ++i) {
      PublishReport publish_report;
      const PublishedTable table =
          eng->Publish(grid[i], &publish_report).ValueOrDie();
      AccumulateCache(publish_report, leg);
      if (Flatten(table) != cold_outputs[i]) {
        std::fprintf(stderr,
                     "throughput_engine: %s output for request %zu diverged "
                     "from the cold release — refusing to report timings "
                     "for a wrong answer\n",
                     leg->name.c_str(), i);
        std::exit(1);
      }
    }
    return NowNs() - t0;
  };

  Leg populate{"populate"};
  populate.wall_ns = serve_pass(&populate);
  populate.publications = grid.size();

  Leg warm{"warm"};
  uint64_t best = ~0ull;
  for (int r = 0; r < reps; ++r) {
    Leg pass{"warm"};
    const uint64_t wall = serve_pass(&pass);
    if (wall < best) {
      best = wall;
      warm.cache_hits = pass.cache_hits;
      warm.cache_misses = pass.cache_misses;
      warm.cache_evictions = pass.cache_evictions;
    }
  }
  warm.wall_ns = best;
  warm.publications = grid.size();

  const double speedup =
      warm.wall_ns > 0 ? static_cast<double>(cold.wall_ns) /
                             static_cast<double>(warm.wall_ns)
                       : 0.0;
  report.SetParam("speedup_warm_vs_cold", speedup);

  for (const Leg* leg : {&cold, &populate, &warm}) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("leg", leg->name);
    row.Set("publications", static_cast<uint64_t>(leg->publications));
    row.Set("wall_ns", leg->wall_ns);
    row.Set("publications_per_sec", leg->PublicationsPerSec());
    row.Set("cache_hits", leg->cache_hits);
    row.Set("cache_misses", leg->cache_misses);
    row.Set("cache_evictions", leg->cache_evictions);
    row.Set("cache_hit_rate", leg->CacheHitRate());
    report.AddResult(std::move(row));
    std::fprintf(stderr,
                 "throughput_engine: %-8s %10.3f ms  %6.2f pub/s  "
                 "hit_rate=%.2f\n",
                 leg->name.c_str(), leg->wall_ns / 1e6,
                 leg->PublicationsPerSec(), leg->CacheHitRate());
  }
  std::fprintf(stderr, "throughput_engine: warm vs cold speedup %.2fx\n",
               speedup);
  return report.WriteAndLog() ? 0 : 1;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  const std::string trace = pgpub::bench::TraceFromArgs(argc, argv);
  const int rc = pgpub::Main();
  return pgpub::bench::FinishTrace(trace) ? rc : 1;
}
