#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pg_publisher.h"
#include "core/published_table.h"
#include "mining/category.h"
#include "table/table.h"

/// \file
/// The fingerprint vocabulary shared by bench/sal_full.cc and the
/// golden-pin suite tests/sal_golden_test.cc: both must compute the SAME
/// digests over the SAME workload, or the pins could not catch a bench
/// regression from ctest.
namespace pgpub {
namespace bench {

/// FNV-1a over a stream of int64 values, mixed byte-by-byte.
struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void Mix(int64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= static_cast<uint64_t>(v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

/// Digest of every 997th row (plus the shape) — cheap at any scale, and a
/// row-order-sensitive witness of the generator's output.
inline uint64_t RowSampleDigest(const Table& table) {
  Fnv fnv;
  fnv.Mix(static_cast<int64_t>(table.num_rows()));
  fnv.Mix(table.num_attributes());
  for (size_t r = 0; r < table.num_rows(); r += 997) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      fnv.Mix(table.value(r, a));
    }
  }
  return fnv.h;
}

/// Digest of the per-column code histograms — row-order-insensitive, so
/// it catches distribution drift the sparse row sample might miss.
inline uint64_t HistogramDigest(const Table& table) {
  Fnv fnv;
  for (int a = 0; a < table.num_attributes(); ++a) {
    std::vector<int64_t> hist(table.domain(a).size(), 0);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ++hist[table.value(r, a)];
    }
    fnv.Mix(a);
    for (int64_t count : hist) fnv.Mix(count);
  }
  return fnv.h;
}

/// Digest of everything a release publishes (generalized QI, sensitive,
/// group sizes) — the byte-identity witness as one number.
inline uint64_t PublicationDigest(const PublishedTable& table) {
  Fnv fnv;
  fnv.Mix(static_cast<int64_t>(table.num_rows()));
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (int i = 0; i < table.num_qi_attrs(); ++i) {
      fnv.Mix(table.qi_gen(r, i));
    }
    fnv.Mix(table.sensitive(r));
    fnv.Mix(static_cast<int64_t>(table.group_size(r)));
  }
  return fnv.h;
}

inline std::string Hex(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// The paper's main workload: one TDS publication of the SAL table at
/// k = 10, p = 0.3 with the m = 2 income classes (Section VII's
/// classification task). Pinned by tests/sal_golden_test.cc.
inline PgOptions SalColdPublishOptions(int threads) {
  PgOptions options;
  options.k = 10;
  options.p = 0.3;
  options.seed = 42;
  options.class_category_starts = CategoryMap::PaperIncome(2).starts();
  options.num_threads = threads;
  return options;
}

}  // namespace bench
}  // namespace pgpub
