/// \file scaling_threads.cc
/// Thread-scaling sweep for the parallel execution engine (DESIGN.md §9).
/// For each workload the same seed runs at 1, 2, 4, and 8 threads; every
/// row records wall time and speedup vs. the serial leg, and a built-in
/// equality guard re-checks that the parallel output is byte-identical to
/// serial before any timing is reported (a fast wrong answer is not a
/// speedup).
///
/// Workloads:
///   perturb          — stream-keyed randomized response on the census
///                      income column (PGPUB_SCALE_N rows, default 100k).
///   breach           — BreachScenario trial fan-out (corruption-linking
///                      adversary, PGPUB_SCALE_VICTIMS trials, default 200).
///   publish          — full PG publication end to end, row-wise Phase 2
///                      (the historical series the committed baseline
///                      tracks).
///   publish_columnar — the same publication on the columnar Phase-2
///                      engine; its serial release must be byte-identical
///                      to the row-wise one before any timing is reported.
///
/// Pool leases are created OUTSIDE the timed regions: spinning up a
/// thread pool per repetition used to be timed with the work, which
/// flattened the measured scaling for the sub-millisecond workloads.
///
/// Emits BENCH_scaling_threads.json (schema_version 1) with one result
/// row per (workload, threads).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/adversaries.h"
#include "attack/external_db.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "bench/bench_report.h"
#include "common/parallel/thread_pool.h"
#include "core/columnar/phase2.h"
#include "core/pg_publisher.h"
#include "datagen/census.h"
#include "perturb/randomized_response.h"

namespace pgpub {
namespace {

constexpr int kThreadSweep[] = {1, 2, 4, 8};

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-`reps` wall time of `fn` in nanoseconds.
template <typename Fn>
uint64_t TimeBest(int reps, const Fn& fn) {
  uint64_t best = ~0ull;
  for (int r = 0; r < reps; ++r) {
    const uint64_t t0 = NowNs();
    fn();
    const uint64_t elapsed = NowNs() - t0;
    if (elapsed < best) best = elapsed;
  }
  return best;
}

struct SweepRow {
  std::string workload;
  int threads = 0;
  uint64_t wall_ns = 0;
  double speedup_vs_serial = 0.0;
};

/// Times `run(threads)` across the sweep. `run` must return a value that
/// compares equal to the serial leg's — the equality guard fails the
/// whole binary otherwise.
template <typename Run>
bool SweepWorkload(const std::string& name, int reps, const Run& run,
                   std::vector<SweepRow>* rows) {
  const auto serial_out = run(1);
  uint64_t serial_ns = 0;
  for (int threads : kThreadSweep) {
    const auto out = run(threads);
    if (!(out == serial_out)) {
      std::fprintf(stderr,
                   "scaling_threads: %s output at %d threads diverged from "
                   "serial — refusing to report timings for a wrong "
                   "answer\n",
                   name.c_str(), threads);
      return false;
    }
    const uint64_t wall = TimeBest(reps, [&] {
      const auto timed = run(threads);
      if (!(timed == serial_out)) std::abort();
    });
    if (threads == 1) serial_ns = wall;
    SweepRow row;
    row.workload = name;
    row.threads = threads;
    row.wall_ns = wall;
    row.speedup_vs_serial =
        wall > 0 ? static_cast<double>(serial_ns) / static_cast<double>(wall)
                 : 0.0;
    rows->push_back(row);
    std::fprintf(stderr, "scaling_threads: %-8s threads=%d  %10.3f ms  %.2fx\n",
                 name.c_str(), threads, wall / 1e6, row.speedup_vs_serial);
  }
  return true;
}

int Main() {
  const size_t n = EnvSize("PGPUB_SCALE_N", 100000);
  const size_t victims = EnvSize("PGPUB_SCALE_VICTIMS", 200);
  const int reps = static_cast<int>(EnvSize("PGPUB_SCALE_REPS", 3));

  bench::BenchReport report("scaling_threads");
  report.SetParam("rows", static_cast<uint64_t>(n));
  report.SetParam("victims", static_cast<uint64_t>(victims));
  report.SetParam("reps", static_cast<uint64_t>(reps));
  report.SetParam("hardware_threads",
                  static_cast<uint64_t>(ThreadPool::DefaultNumThreads()));

  CensusDataset census = GenerateCensus(n, 1).ValueOrDie();
  std::vector<SweepRow> rows;

  // One long-lived lease per sweep point, shared by every workload whose
  // timed body takes a pool (the hoist described in the header comment).
  std::map<int, std::unique_ptr<PoolLease>> leases;
  for (int threads : kThreadSweep) {
    leases[threads] = std::make_unique<PoolLease>(threads);
  }

  // ---- Workload 1: per-tuple perturbation.
  {
    const UniformPerturbation channel(0.3, 50);
    const std::vector<int32_t>& column =
        census.table.column(CensusColumns::kIncome);
    auto run = [&](int threads) {
      return channel
          .PerturbColumnStreams(column, 42, leases.at(threads)->get())
          .ValueOrDie();
    };
    if (!SweepWorkload("perturb", reps, run, &rows)) return 1;
  }

  // ---- Shared release for the breach workload.
  PgOptions options;
  options.k = 6;
  options.p = 0.3;
  options.seed = 42;
  PgPublisher publisher(options);
  const PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers())
          .ValueOrDie();
  Rng edb_rng(7);
  const ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(census.table, 1000, edb_rng);

  // ---- Workload 2: breach-scenario trial fan-out.
  {
    ScenarioDataset dataset;
    dataset.name = "census";
    dataset.microdata = &census.table;
    dataset.sensitive_attr = published.sensitive_attr();
    dataset.edb = &edb;
    FixedPgRelease release(&published);
    CorruptionLinkingAdversary adversary;
    auto run = [&](int threads) {
      ScenarioOptions scenario;
      scenario.harness.num_victims = victims;
      scenario.harness.corruption_rate = 0.8;
      scenario.harness.seed = 42;
      scenario.harness.pool = leases.at(threads)->get();
      const BreachStats stats =
          BreachScenario::Run(release, adversary, dataset, scenario)
              .ValueOrDie();
      // Equality via the exactly-folded aggregates (SweepWorkload compares
      // with ==, so pack them into a comparable tuple).
      return std::vector<double>{static_cast<double>(stats.attacks),
                                 stats.max_growth,
                                 stats.mean_growth,
                                 stats.max_posterior_rho1,
                                 stats.max_h,
                                 static_cast<double>(stats.delta_breaches),
                                 static_cast<double>(stats.rho_breaches)};
    };
    if (!SweepWorkload("breach", reps, run, &rows)) return 1;
  }

  // ---- Workloads 3 and 4: end-to-end publication, both Phase-2 engines.
  {
    auto publish_flat = [&](columnar::Phase2Impl impl, int threads) {
      PgOptions opt = options;
      opt.num_threads = threads;
      opt.phase2_impl = impl;
      PgPublisher pub(opt);
      const PublishedTable table =
          pub.Publish(census.table, census.TaxonomyPointers()).ValueOrDie();
      // Flatten the release into a comparable vector.
      std::vector<int32_t> flat;
      flat.reserve(table.num_rows() * (table.num_qi_attrs() + 2));
      for (size_t r = 0; r < table.num_rows(); ++r) {
        for (int i = 0; i < table.num_qi_attrs(); ++i) {
          flat.push_back(table.qi_gen(r, i));
        }
        flat.push_back(table.sensitive(r));
        flat.push_back(static_cast<int32_t>(table.group_size(r)));
      }
      return flat;
    };
    // Cross-engine guard before any timing: the columnar serial release
    // must equal the row-wise serial release byte for byte.
    if (publish_flat(columnar::Phase2Impl::kRowwise, 1) !=
        publish_flat(columnar::Phase2Impl::kColumnar, 1)) {
      std::fprintf(stderr,
                   "scaling_threads: columnar publication diverged from "
                   "row-wise — refusing to report timings for a wrong "
                   "answer\n");
      return 1;
    }
    auto run_rowwise = [&](int threads) {
      return publish_flat(columnar::Phase2Impl::kRowwise, threads);
    };
    if (!SweepWorkload("publish", reps, run_rowwise, &rows)) return 1;
    auto run_columnar = [&](int threads) {
      return publish_flat(columnar::Phase2Impl::kColumnar, threads);
    };
    if (!SweepWorkload("publish_columnar", reps, run_columnar, &rows)) {
      return 1;
    }
  }

  for (const SweepRow& row : rows) {
    obs::JsonValue json_row = obs::JsonValue::Object();
    json_row.Set("workload", row.workload);
    json_row.Set("threads", row.threads);
    json_row.Set("wall_ns", row.wall_ns);
    json_row.Set("speedup_vs_serial", row.speedup_vs_serial);
    report.AddResult(std::move(json_row));
  }
  return report.WriteAndLog() ? 0 : 1;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  const std::string trace = pgpub::bench::TraceFromArgs(argc, argv);
  const int rc = pgpub::Main();
  return pgpub::bench::FinishTrace(trace) ? rc : 1;
}
