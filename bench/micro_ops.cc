/// \file micro_ops.cc
/// google-benchmark micro-benchmarks of the pipeline stages (DESIGN.md
/// E9/E10): perturbation throughput, QI grouping, TDS generalization,
/// stratified sampling, end-to-end publication scaling, attack posterior
/// computation, and the guarantee solvers.

#include <benchmark/benchmark.h>

#include "attack/linking_attack.h"
#include "bench/bench_report.h"
#include "core/pg_publisher.h"
#include "datagen/census.h"
#include "generalize/tds.h"
#include "mining/category.h"
#include "common/parallel/thread_pool.h"
#include "perturb/randomized_response.h"
#include "generalize/anatomy.h"
#include "mining/naive_bayes.h"
#include "republish/minvariance.h"
#include "sample/stratified.h"

namespace pgpub {
namespace {

const CensusDataset& SharedCensus(size_t n) {
  static auto* cache =
      new std::unordered_map<size_t, CensusDataset>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    it = cache->emplace(n, GenerateCensus(n, 1).ValueOrDie()).first;
  }
  return it->second;
}

void BM_Perturbation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const CensusDataset& census = SharedCensus(n);
  UniformPerturbation channel(0.3, 50);
  Rng rng(2);
  for (auto _ : state) {
    auto out =
        channel.PerturbColumn(census.table.column(CensusColumns::kIncome),
                              rng);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Perturbation)->Arg(10000)->Arg(100000);

/// Stream-keyed perturbation (the pipeline's production path since the
/// parallel engine landed): arg0 = rows, arg1 = threads (1 = serial
/// inline). Bit-identical output at every thread count, so the deltas
/// here are pure scheduling cost/win.
void BM_PerturbationStreams(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const CensusDataset& census = SharedCensus(n);
  UniformPerturbation channel(0.3, 50);
  PoolLease lease(threads);
  for (auto _ : state) {
    auto out = channel
                   .PerturbColumnStreams(
                       census.table.column(CensusColumns::kIncome), 42,
                       lease.get())
                   .ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PerturbationStreams)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8});

void BM_QiGrouping(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const CensusDataset& census = SharedCensus(n);
  const std::vector<int> qi = census.table.schema().QiIndices();
  // A mid-granularity recoding: every attribute at half resolution.
  GlobalRecoding recoding;
  recoding.qi_attrs = qi;
  for (int a : qi) {
    const int32_t domain = census.table.domain(a).size();
    AttributeRecoding rec = AttributeRecoding::Single(domain);
    for (int32_t c = 2; c < domain; c += 2) rec.SplitAt(c);
    recoding.per_attr.push_back(std::move(rec));
  }
  for (auto _ : state) {
    QiGroups groups = ComputeQiGroups(census.table, recoding);
    benchmark::DoNotOptimize(groups);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_QiGrouping)->Arg(10000)->Arg(100000);

/// Stratified sampling materializes one SelectRows per QI group; for the
/// small per-group subsets that dominate that phase the cost used to be
/// the deep copy of the schema and every attribute dictionary, not the
/// rows. TableMeta sharing (table/table.h) makes a subset O(rows
/// selected); arg0 = subset size.
void BM_SelectRows(benchmark::State& state) {
  const CensusDataset& census = SharedCensus(100000);
  const size_t subset = static_cast<size_t>(state.range(0));
  std::vector<size_t> rows(subset);
  size_t next = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < subset; ++i) {
      rows[i] = (next + i * 37) % census.table.num_rows();
    }
    next = (next + 1) % census.table.num_rows();
    Table out = census.table.SelectRows(rows);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(subset));
}
BENCHMARK(BM_SelectRows)->Arg(8)->Arg(1024);

void BM_TdsGeneralization(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const CensusDataset& census = SharedCensus(n);
  const std::vector<int> qi = census.table.schema().QiIndices();
  CategoryMap cats = CategoryMap::PaperIncome(2);
  std::vector<int32_t> labels =
      cats.Map(census.table.column(CensusColumns::kIncome));
  for (auto _ : state) {
    TdsOptions options;
    options.k = 6;
    TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                           labels, 2, options);
    auto recoding = tds.Run().ValueOrDie();
    benchmark::DoNotOptimize(recoding);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_TdsGeneralization)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedSampling(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const CensusDataset& census = SharedCensus(n);
  const std::vector<int> qi = census.table.schema().QiIndices();
  TdsOptions options;
  options.k = 6;
  TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                         census.table.column(CensusColumns::kIncome), 50,
                         options);
  GlobalRecoding recoding = tds.Run().ValueOrDie();
  QiGroups groups = ComputeQiGroups(census.table, recoding);
  Rng rng(3);
  for (auto _ : state) {
    auto sample = StratifiedSample(groups, rng);
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          groups.num_groups());
}
BENCHMARK(BM_StratifiedSampling)->Arg(50000);

void BM_PublishEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const CensusDataset& census = SharedCensus(n);
  for (auto _ : state) {
    PgOptions options;
    options.k = 6;
    options.p = 0.3;
    options.seed = 4;
    PgPublisher publisher(options);
    auto published =
        publisher.Publish(census.table, census.TaxonomyPointers())
            .ValueOrDie();
    benchmark::DoNotOptimize(published);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PublishEndToEnd)
    ->Arg(10000)
    ->Arg(50000)
    ->Arg(200000)
    ->Unit(benchmark::kMillisecond);

void BM_AttackPosterior(benchmark::State& state) {
  const size_t n = 20000;
  const CensusDataset& census = SharedCensus(n);
  PgOptions options;
  options.k = 6;
  options.p = 0.3;
  options.seed = 5;
  PgPublisher publisher(options);
  static PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers())
          .ValueOrDie();
  Rng rng(6);
  static ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(census.table, 1000, rng);
  LinkingAttack attacker =
      LinkingAttack::Create(&published, &edb).ValueOrDie();
  Adversary adversary;
  adversary.victim_prior = BackgroundKnowledge::Uniform(50).ValueOrDie();
  size_t victim = 0;
  for (auto _ : state) {
    auto result = attacker.Attack(victim, adversary).ValueOrDie();
    benchmark::DoNotOptimize(result);
    victim = (victim + 37) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AttackPosterior);

void BM_ReconstructionTreeTraining(benchmark::State& state) {
  const size_t n = 100000;
  const CensusDataset& census = SharedCensus(n);
  CategoryMap cats = CategoryMap::PaperIncome(2);
  PgOptions options;
  options.k = 6;
  options.p = 0.3;
  options.seed = 8;
  options.class_category_starts = cats.starts();
  PgPublisher publisher(options);
  static PublishedTable published =
      publisher.Publish(census.table, census.TaxonomyPointers())
          .ValueOrDie();
  TreeDataset dataset =
      TreeDataset::FromPublished(published, cats, census.nominal);
  Reconstructor reconstructor(0.3, cats.Weights());
  TreeOptions tree_options;
  tree_options.reconstructor = &reconstructor;
  tree_options.significance_chi2 = 10.0;
  for (auto _ : state) {
    auto tree = DecisionTree::Train(dataset, tree_options).ValueOrDie();
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          dataset.num_rows());
}
BENCHMARK(BM_ReconstructionTreeTraining);

void BM_NaiveBayesTraining(benchmark::State& state) {
  const size_t n = 100000;
  const CensusDataset& census = SharedCensus(n);
  CategoryMap cats = CategoryMap::PaperIncome(2);
  std::vector<int32_t> labels =
      cats.Map(census.table.column(CensusColumns::kIncome));
  TreeDataset dataset =
      TreeDataset::FromRaw(census.table, census.table.schema().QiIndices(),
                           labels, 2, census.nominal);
  for (auto _ : state) {
    auto model =
        NaiveBayesClassifier::Train(dataset, NaiveBayesOptions{})
            .ValueOrDie();
    benchmark::DoNotOptimize(model);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_NaiveBayesTraining)->Unit(benchmark::kMillisecond);

void BM_Anatomize(benchmark::State& state) {
  const size_t n = 100000;
  const CensusDataset& census = SharedCensus(n);
  Rng rng(9);
  for (auto _ : state) {
    auto release =
        Anatomize(census.table, CensusColumns::kIncome, 4, rng).ValueOrDie();
    benchmark::DoNotOptimize(release);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Anatomize)->Unit(benchmark::kMillisecond);

void BM_MInvariantRound(benchmark::State& state) {
  // One re-publication round over a 50k population with 20% churn.
  Rng rng(10);
  std::vector<std::pair<int64_t, int32_t>> alive;
  for (int64_t i = 0; i < 50000; ++i) {
    alive.push_back({i, static_cast<int32_t>(rng.UniformU64(30))});
  }
  for (auto _ : state) {
    state.PauseTiming();
    MInvariantRepublisher republisher(3, 30, 11);
    state.ResumeTiming();
    auto release = republisher.PublishNext(alive).ValueOrDie();
    benchmark::DoNotOptimize(release);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          alive.size());
}
BENCHMARK(BM_MInvariantRound)->Unit(benchmark::kMillisecond);

void BM_GuaranteeSolver(benchmark::State& state) {
  for (auto _ : state) {
    auto p = MaxRetentionForRho(6, 0.1, 50, 0.2, 0.45).ValueOrDie();
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuaranteeSolver);

void BM_CensusGeneration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto census = GenerateCensus(n, 7).ValueOrDie();
    benchmark::DoNotOptimize(census);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_CensusGeneration)->Arg(100000)->Unit(benchmark::kMillisecond);

/// Console reporter that also retains every run so main() can write the
/// BENCH_micro_ops.json artifact after the suite finishes.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) runs_.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(report);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pgpub::bench::BenchReport report("micro_ops");
  pgpub::CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  uint64_t total_iterations = 0;
  for (const auto& run : reporter.runs()) {
    if (run.run_type != pgpub::CollectingReporter::Run::RT_Iteration ||
        run.error_occurred) {
      continue;
    }
    pgpub::obs::JsonValue row = pgpub::obs::JsonValue::Object();
    row.Set("name", run.benchmark_name());
    row.Set("iterations", static_cast<uint64_t>(run.iterations));
    row.Set("real_time_ns",
            static_cast<uint64_t>(run.real_accumulated_time * 1e9));
    row.Set("cpu_time_ns",
            static_cast<uint64_t>(run.cpu_accumulated_time * 1e9));
    auto items = run.counters.find("items_per_second");
    if (items != run.counters.end()) {
      row.Set("items_per_second", static_cast<double>(items->second));
    }
    report.AddResult(std::move(row));
    total_iterations += static_cast<uint64_t>(run.iterations);
  }
  report.SetIterations(total_iterations);
  return report.WriteAndLog() ? 0 : 1;
}
