/// \file query_accuracy.cc
/// Extension experiment (not a paper figure): COUNT-query answering over
/// PG releases — the utility axis of the perturbation-publication line the
/// paper relates to in Section VIII (Rastogi et al.; privacy-preserving
/// OLAP). A workload of random conjunctive queries (occupation range x
/// income band) is answered from (a) the PG release via the
/// channel-corrected estimator in src/query and (b) a clean uniform
/// |D|/k subset (what a plain subset release supports), and we report the
/// median relative error of each as p and k vary.
///
/// Environment: SAL_N (default 400000).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "query/count_query.h"

using namespace pgpub;
using namespace pgpub::bench;

namespace {

std::vector<CountQuery> MakeWorkload(Rng& rng, size_t count) {
  std::vector<CountQuery> workload;
  for (size_t i = 0; i < count; ++i) {
    CountQuery q;
    // Occupation range covering 30-70% of the domain.
    const int32_t width = 15 + static_cast<int32_t>(rng.UniformU64(20));
    const int32_t lo = static_cast<int32_t>(rng.UniformU64(50 - width));
    q.qi_ranges.push_back(
        {CensusColumns::kOccupation, Interval(lo, lo + width - 1)});
    // Income band of 10-25 buckets.
    const int32_t band = 10 + static_cast<int32_t>(rng.UniformU64(16));
    const int32_t start = static_cast<int32_t>(rng.UniformU64(50 - band));
    q.sensitive_set.assign(50, false);
    for (int32_t v = start; v < start + band; ++v) q.sensitive_set[v] = true;
    workload.push_back(std::move(q));
  }
  return workload;
}

double MedianRelError(std::vector<double>& errors) {
  std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                   errors.end());
  return errors[errors.size() / 2];
}

}  // namespace

int main() {
  const size_t n = SalRows();
  BenchReport report("query_accuracy");
  report.SetParam("sal_n", n);
  report.SetParam("workload_queries", 60);
  std::printf("generating %zu census rows...\n", n);
  CensusDataset census = GenerateCensus(n, 20080407).ValueOrDie();
  Rng rng(271828);
  const std::vector<CountQuery> workload = MakeWorkload(rng, 60);

  std::vector<int64_t> truths;
  for (const CountQuery& q : workload) {
    truths.push_back(ExactCount(census.table, q).ValueOrDie());
  }

  auto run_point = [&](double p, int k) {
    PgOptions options;
    options.k = k;
    options.p = p;
    options.seed = 5;
    PgPublisher publisher(options);
    PublishedTable published =
        publisher.Publish(census.table, census.TaxonomyPointers())
            .ValueOrDie();
    Rng sample_rng(6);
    Table subset = census.table.SelectRows(
        UniformRowSample(n, n / k, sample_rng));

    std::vector<double> pg_err, sub_err;
    for (size_t i = 0; i < workload.size(); ++i) {
      if (truths[i] < 100) continue;  // skip near-empty queries
      const double truth = static_cast<double>(truths[i]);
      const double pg =
          EstimateCount(published, workload[i]).ValueOrDie().estimate;
      const double sub =
          EstimateCountFromSample(subset, n, workload[i])
              .ValueOrDie()
              .estimate;
      pg_err.push_back(std::fabs(pg - truth) / truth);
      sub_err.push_back(std::fabs(sub - truth) / truth);
    }
    const double pg_med = MedianRelError(pg_err);
    const double sub_med = MedianRelError(sub_err);
    std::printf("  PG median rel-err %.4f | clean-subset %.4f (over %zu "
                "queries)\n",
                pg_med, sub_med, pg_err.size());
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("p", p);
    row.Set("k", k);
    row.Set("pg_median_rel_err", pg_med);
    row.Set("subset_median_rel_err", sub_med);
    row.Set("queries", pg_err.size());
    report.AddResult(std::move(row));
  };

  std::printf("\n=== COUNT accuracy vs p (k = 6) ===\n");
  for (double p : {0.15, 0.30, 0.45}) {
    std::printf("p = %.2f:\n", p);
    run_point(p, 6);
  }
  std::printf("\n=== COUNT accuracy vs k (p = 0.3) ===\n");
  for (int k : {2, 6, 10}) {
    std::printf("k = %d:\n", k);
    run_point(0.3, k);
  }
  std::printf(
      "\nExpected: PG error shrinks as p grows; the clean subset is the\n"
      "no-privacy reference. PG pays the randomized-response variance but\n"
      "needs no trusted curator for the sensitive column.\n");
  return report.WriteAndLog() ? 0 : 1;
}
