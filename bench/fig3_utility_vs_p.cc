/// \file fig3_utility_vs_p.cc
/// Regenerates Figure 3 of the paper: decision-tree classification error
/// versus the retention probability p at k = 6, for m = 2 (Figure 3a) and
/// m = 3 (Figure 3b).
///
/// Environment: SAL_N (rows, default 120000), SAL_RUNS (default 3).

#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"

using namespace pgpub;
using namespace pgpub::bench;

int main() {
  const size_t n = SalRows();
  BenchReport report("fig3_utility_vs_p");
  report.SetParam("sal_n", n);
  report.SetParam("sal_runs", SalRuns());
  report.SetParam("k", 6);
  std::printf("generating %zu census rows (SAL_N to change)...\n", n);
  CensusDataset census = GenerateCensus(n, 20080407).ValueOrDie();

  for (int m : {2, 3}) {
    std::printf("\n=== Figure 3%s: classification error vs p (k = 6, "
                "m = %d) ===\n",
                m == 2 ? "a" : "b", m);
    std::printf("%-6s %-12s %-12s %-12s\n", "p", "optimistic", "PG",
                "pessimistic");
    for (double p : {0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
      UtilityPoint point = AveragedUtilityPoint(census, p, 6, m);
      std::printf("%-6.2f %-12.4f %-12.4f %-12.4f\n", p,
                  point.optimistic_error, point.pg_error,
                  point.pessimistic_error);
      obs::JsonValue row = obs::JsonValue::Object();
      row.Set("m", m);
      row.Set("p", p);
      row.Set("pg_error", point.pg_error);
      row.Set("optimistic_error", point.optimistic_error);
      row.Set("pessimistic_error", point.pessimistic_error);
      report.AddResult(std::move(row));
    }
  }
  std::printf(
      "\nExpected shape (paper): optimistic and pessimistic are flat in p;\n"
      "PG improves as p grows (the standard perturbation trade-off).\n");
  return report.WriteAndLog() ? 0 : 1;
}
