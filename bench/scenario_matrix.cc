/// \file scenario_matrix.cc
/// The scenario framework at full width: every publisher × every adversary
/// × every dataset in one deterministic driver (emits
/// BENCH_scenario_matrix.json).
///
/// Publishers: PG at the paper's operating point, the pessimistic baseline
/// (p = 0), and two rival guarantees — (0.5,3)-diversity and 2-likeness —
/// each declaring its own bounds. Adversaries: the Section V
/// corruption-linking attack, the worst-case λ-bounded background
/// adversary, and the transparent replay adversary. Datasets: census,
/// clinic, the paper's 8-row hospital example, and a SAL smoke slice.
///
/// Determinism: releases are published serially up front; attack cells
/// then fan out over a pool, each drawing from its own
/// ScenarioCellSeed-derived stream with a serial fold per cell — so the
/// artifact (and the matrix_digest param) is byte-identical at every
/// PGPUB_THREADS value.
///
/// Environment: PGPUB_SCEN_ROWS (census/clinic rows, default 8000),
/// PGPUB_SCEN_VICTIMS (attacks per cell, default 120), SAL_N (SAL slice,
/// capped at 40000), PGPUB_THREADS (cell fan-out width).

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/adversaries.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "datagen/clinic.h"
#include "datagen/hospital.h"
#include "datagen/sal.h"

using namespace pgpub;
using namespace pgpub::bench;

namespace {

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// FNV-1a over the serialized result rows: a cheap cross-run fingerprint
/// for the determinism check (two runs at different PGPUB_THREADS must
/// produce the same digest).
uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

int main() {
  const size_t rows = EnvSize("PGPUB_SCEN_ROWS", 8000);
  const size_t sal_rows = std::min<size_t>(SalRows(), 40000);
  const size_t victims = EnvSize("PGPUB_SCEN_VICTIMS", 120);
  const uint64_t matrix_seed = 42;

  BenchReport report("scenario_matrix");
  report.SetParam("rows", rows);
  report.SetParam("sal_rows", sal_rows);
  report.SetParam("num_victims", victims);
  report.SetParam("matrix_seed", matrix_seed);

  // ---- Datasets (owned storage stays alive; scenarios hold views).
  std::printf("generating datasets (census/clinic %zu rows, sal %zu)...\n",
              rows, sal_rows);
  CensusDataset census = GenerateCensus(rows, 42).ValueOrDie();
  CensusDataset clinic = GenerateClinic(rows, 43).ValueOrDie();
  HospitalDataset hospital = MakeHospitalDataset().ValueOrDie();
  SalOptions sal_options;
  sal_options.num_rows = sal_rows;
  CensusDataset sal = GenerateSal(sal_options).ValueOrDie();

  // One external database per dataset, built once and shared by every
  // cell (the hospital ships the paper's voter list).
  Rng census_rng(101);
  ExternalDatabase census_edb =
      ExternalDatabase::FromMicrodata(census.table, rows / 20, census_rng);
  Rng clinic_rng(102);
  ExternalDatabase clinic_edb =
      ExternalDatabase::FromMicrodata(clinic.table, rows / 20, clinic_rng);
  Rng sal_rng(103);
  ExternalDatabase sal_edb =
      ExternalDatabase::FromMicrodata(sal.table, sal_rows / 20, sal_rng);

  std::vector<ScenarioDataset> datasets(4);
  datasets[0].name = "census";
  datasets[0].microdata = &census.table;
  datasets[0].taxonomies = census.TaxonomyPointers();
  datasets[0].sensitive_attr = CensusColumns::kIncome;
  datasets[0].edb = &census_edb;
  datasets[1].name = "clinic";
  datasets[1].microdata = &clinic.table;
  datasets[1].taxonomies = clinic.TaxonomyPointers();
  datasets[1].sensitive_attr = ClinicColumns::kDisease;
  datasets[1].edb = &clinic_edb;
  datasets[2].name = "hospital";
  datasets[2].microdata = &hospital.table;
  datasets[2].taxonomies = hospital.TaxonomyPointers();
  datasets[2].sensitive_attr = HospitalColumns::kDisease;
  datasets[2].edb = &hospital.voter_list;
  datasets[3].name = "sal-smoke";
  datasets[3].microdata = &sal.table;
  datasets[3].taxonomies = sal.TaxonomyPointers();
  datasets[3].sensitive_attr = CensusColumns::kIncome;
  datasets[3].edb = &sal_edb;

  // ---- The matrix axes. The hospital example has 8 rows, so k = 2 there
  // would match the paper's Table Ic; k = 4 still publishes (two groups)
  // and keeps one k across the matrix.
  std::vector<std::unique_ptr<Publisher>> publishers;
  publishers.push_back(std::make_unique<PgScenarioPublisher>());
  publishers.push_back(std::make_unique<PgScenarioPublisher>(
      PgScenarioPublisher::Pessimistic(4)));
  publishers.push_back(
      std::make_unique<CLDiversityScenarioPublisher>(0.5, 3, 4));
  publishers.push_back(
      std::make_unique<BetaLikenessScenarioPublisher>(2.0, 4));

  std::vector<std::unique_ptr<AdversaryModel>> adversaries;
  adversaries.push_back(std::make_unique<CorruptionLinkingAdversary>());
  adversaries.push_back(std::make_unique<WorstCaseBackgroundAdversary>());
  adversaries.push_back(std::make_unique<TransparentReplayAdversary>());

  const size_t P = publishers.size();
  const size_t D = datasets.size();
  const size_t A = adversaries.size();

  ScenarioOptions base;
  base.harness.num_victims = victims;
  base.harness.corruption_rate = 0.5;
  base.harness.lambda = 0.1;
  base.harness.rho1 = 0.2;
  base.harness.prior_kind = BreachHarnessOptions::PriorKind::kSkewTrue;

  // ---- Publish phase: every (publisher, dataset) release, serially.
  // Publishes are the expensive axis product, and running them up front
  // lets every adversary attack the *same* release.
  std::printf("publishing %zu releases...\n", P * D);
  std::vector<std::optional<Release>> releases(P * D);
  std::vector<std::string> publish_errors(P * D);
  for (size_t pi = 0; pi < P; ++pi) {
    for (size_t di = 0; di < D; ++di) {
      const size_t slot = pi * D + di;
      ScenarioOptions options = base;
      options.publish_seed = ScenarioCellSeed(matrix_seed, 0x9000 + slot);
      Result<Release> release =
          publishers[pi]->Publish(datasets[di], options, nullptr);
      if (release.ok()) {
        releases[slot] = std::move(*release);
      } else {
        publish_errors[slot] = release.status().ToString();
        std::printf("  %s x %s: publish failed: %s\n",
                    std::string(publishers[pi]->name()).c_str(),
                    datasets[di].name.c_str(), publish_errors[slot].c_str());
      }
    }
  }

  // ---- Attack phase: fan out over cells; each cell's trials draw from
  // their own streams and RunOnRelease degrades its inner loop to serial
  // inside this region, so the fold per cell is thread-count-invariant.
  const size_t num_cells = P * D * A;
  std::printf("attacking %zu cells (%zu victims each)...\n", num_cells,
              victims);
  std::vector<std::optional<BreachStats>> cell_stats(num_cells);
  std::vector<std::string> cell_errors(num_cells);
  PoolLease lease(0);
  const Status fanned = ParallelFor(
      lease.get(), IndexRange(0, num_cells), /*grain=*/1,
      [&](size_t begin, size_t end) -> Status {
        for (size_t cell = begin; cell < end; ++cell) {
          const size_t ai = cell % A;
          const size_t di = (cell / A) % D;
          const size_t pi = cell / (A * D);
          const size_t slot = pi * D + di;
          if (!releases[slot].has_value()) continue;  // publish failed
          ScenarioOptions options = base;
          options.harness.seed = ScenarioCellSeed(matrix_seed, cell);
          Result<BreachStats> stats = BreachScenario::RunOnRelease(
              *releases[slot], *adversaries[ai], datasets[di], options);
          if (stats.ok()) {
            cell_stats[cell] = std::move(*stats);
          } else {
            cell_errors[cell] = stats.status().ToString();
          }
        }
        return Status::OK();
      });
  if (!fanned.ok()) {
    std::fprintf(stderr, "scenario_matrix: fan-out failed: %s\n",
                 fanned.ToString().c_str());
    return 1;
  }

  // ---- Serial assembly in cell order.
  obs::JsonValue rows_json = obs::JsonValue::Array();
  std::printf("\n%-12s %-18s %-10s | %-7s %-9s %-9s %-9s %-7s\n", "publisher",
              "adversary", "dataset", "attacks", "breach", "max-grow",
              "max-post", "violate");
  for (size_t cell = 0; cell < num_cells; ++cell) {
    const size_t ai = cell % A;
    const size_t di = (cell / A) % D;
    const size_t pi = cell / (A * D);
    const size_t slot = pi * D + di;
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("publisher", std::string(publishers[pi]->name()));
    row.Set("adversary", std::string(adversaries[ai]->name()));
    row.Set("dataset", datasets[di].name);
    const bool ok = cell_stats[cell].has_value();
    row.Set("ok", ok);
    if (!ok) {
      row.Set("status", !publish_errors[slot].empty() ? publish_errors[slot]
                                                      : cell_errors[cell]);
      rows_json.Append(std::move(row));
      std::printf("%-12s %-18s %-10s | publish/attack failed\n",
                  std::string(publishers[pi]->name()).c_str(),
                  std::string(adversaries[ai]->name()).c_str(),
                  datasets[di].name.c_str());
      continue;
    }
    const BreachStats& stats = *cell_stats[cell];
    row.Set("guarantee", stats.guarantee);
    row.Set("attacks", stats.attacks);
    row.Set("breach_rate", stats.BreachRate());
    row.Set("breached_attacks", stats.breached_attacks);
    row.Set("delta_breaches", stats.delta_breaches);
    row.Set("rho_breaches", stats.rho_breaches);
    row.Set("bound_violated", stats.BoundViolated());
    row.Set("max_growth", stats.max_growth);
    row.Set("mean_growth", stats.mean_growth);
    row.Set("max_posterior_rho1", stats.max_posterior_rho1);
    row.Set("max_h", stats.max_h);
    row.Set("point_mass_disclosures", stats.point_mass_disclosures);
    // JSON has no infinity: unbounded claims are expressed by omission.
    if (std::isfinite(stats.h_top)) row.Set("h_top", stats.h_top);
    if (std::isfinite(stats.delta_bound)) {
      row.Set("delta_bound", stats.delta_bound);
    }
    if (std::isfinite(stats.rho2_bound)) {
      row.Set("rho2_bound", stats.rho2_bound);
    }
    rows_json.Append(std::move(row));
    std::printf("%-12s %-18s %-10s | %-7zu %-9.4f %-9.4f %-9.4f %-7s\n",
                stats.publisher.c_str(), stats.adversary.c_str(),
                stats.dataset.c_str(), stats.attacks, stats.BreachRate(),
                stats.max_growth, stats.max_posterior_rho1,
                stats.BoundViolated() ? "YES" : "no");
  }

  const uint64_t digest = Fnv1a(rows_json.Dump());
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof(digest_hex), "%016" PRIx64, digest);
  report.SetParam("matrix_digest", std::string(digest_hex));
  std::printf("\nmatrix_digest=%s (must match across PGPUB_THREADS)\n",
              digest_hex);

  // Hand the rows to the report (AddResult counts iterations per row).
  for (const obs::JsonValue& row : rows_json.items()) {
    report.AddResult(row);
  }
  std::printf(
      "\n'violate' = at least one attack exceeded the publisher's own\n"
      "declared bound. PG rows must stay 'no' under the corruption and\n"
      "worst-background adversaries (Theorems 2-3); the transparent\n"
      "adversary exceeds the averaged bounds whenever replay resolves the\n"
      "victim's sampled tuple, and rival guarantees violate under priors\n"
      "they never modeled.\n");
  return report.WriteAndLog() ? 0 : 1;
}
