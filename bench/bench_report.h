#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

namespace pgpub {
namespace bench {

/// \brief Shared machine-readable artifact writer for the bench harnesses.
///
/// Each bench binary creates one BenchReport at startup, records its
/// parameters and result rows as it goes, and calls WriteAndLog() at exit,
/// which produces `BENCH_<name>.json` (in $PGPUB_BENCH_OUT, or the working
/// directory) with schema_version 1:
///
///   {
///     "schema_version": 1,
///     "name": "table3_guarantees",
///     "params": {"sal_n": 400000, ...},
///     "wall_ns": 123456789,
///     "iterations": 12,
///     "results": [{...}, ...],
///     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
///   }
///
/// `results` rows are experiment-specific; `metrics` is the global
/// MetricsRegistry snapshot, so phase span histograms and pipeline
/// counters ride along with every artifact.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        params_(obs::JsonValue::Object()),
        results_(obs::JsonValue::Array()),
        start_(std::chrono::steady_clock::now()) {}

  template <typename T>
  void SetParam(const std::string& key, T value) {
    params_.Set(key, value);
  }

  /// Appends one result row (an arbitrary JSON object) and counts it as
  /// one iteration.
  void AddResult(obs::JsonValue row) {
    results_.Append(std::move(row));
    ++iterations_;
  }

  /// Overrides the iteration count (micro-benchmarks report the summed
  /// per-benchmark iteration counts instead of the row count).
  void SetIterations(uint64_t n) { iterations_ = n; }

  /// Output path: $PGPUB_BENCH_OUT/BENCH_<name>.json, or ./BENCH_<name>.json.
  std::string OutputPath() const {
    std::string dir;
    if (const char* env = std::getenv("PGPUB_BENCH_OUT");
        env != nullptr && *env != '\0') {
      dir = env;
      if (dir.back() != '/') dir += '/';
    }
    return dir + "BENCH_" + name_ + ".json";
  }

  obs::JsonValue ToJson() const {
    const auto wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    obs::JsonValue doc = obs::JsonValue::Object();
    doc.Set("schema_version", 1);
    doc.Set("name", name_);
    doc.Set("params", params_);
    doc.Set("wall_ns", static_cast<uint64_t>(wall_ns));
    doc.Set("iterations", iterations_);
    doc.Set("results", results_);
    doc.Set("metrics", obs::MetricsRegistry::Global().TakeSnapshot().ToJson());
    return doc;
  }

  /// Writes the artifact and prints its path; returns false (after a
  /// diagnostic) when the file cannot be written, so mains can exit
  /// non-zero and CI fails loudly instead of uploading nothing.
  bool WriteAndLog() const {
    const std::string path = OutputPath();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out << ToJson().Dump(2) << "\n";
      out.flush();
    }
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(stderr, "bench: wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  obs::JsonValue params_;
  obs::JsonValue results_;
  uint64_t iterations_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Arms the span collector when the bench was invoked with `--trace=PATH`
/// (or with $PGPUB_TRACE set; the flag wins). Call once at the top of
/// main and keep the returned path — empty means tracing stays off.
inline std::string TraceFromArgs(int argc, char** argv) {
  std::string path;
  if (const char* env = std::getenv("PGPUB_TRACE");
      env != nullptr && *env != '\0') {
    path = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) path = arg.substr(8);
  }
  // Tracer::Enable returns void; the linter conflates it with the
  // Status-returning Failpoint::Enable by name. pgpub-lint: allow(L1)
  if (!path.empty()) obs::Tracer::Global().Enable();
  return path;
}

/// Writes the collected spans as Chrome Trace Event JSON to `path`
/// (no-op when empty, so it composes with TraceFromArgs unconditionally).
/// Returns false after a diagnostic when the file cannot be written.
inline bool FinishTrace(const std::string& path) {
  if (path.empty()) return true;
  const Status written =
      obs::WriteChromeTrace(obs::Tracer::Global().TakeSnapshot(), path);
  if (!written.ok()) {
    std::fprintf(stderr, "bench: %s\n", written.ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "bench: wrote trace %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace pgpub
