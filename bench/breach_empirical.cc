/// \file breach_empirical.cc
/// Ablation (DESIGN.md experiment E8): the empirical face of Section III's
/// Lemmas 1-2 versus Section VI's theorems. The same corruption-aided
/// adversary attacks (a) a conventional (0.5,3)-diverse k-anonymous
/// generalization that releases exact sensitive values and (b) a PG
/// release of the same microdata, across corruption rates. Conventional
/// generalization collapses to certain disclosure; PG's worst observed
/// growth stays under the Theorem-3 bound at every corruption level.
///
/// Environment: SAL_N (default 120000 is more than needed here; this
/// harness caps at 40000 rows for attack-simulation speed), SAL_RUNS.

#include <algorithm>
#include <cstdio>

#include "attack/adversaries.h"
#include "attack/publishers.h"
#include "attack/scenario.h"
#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "diversity/ldiversity.h"
#include "generalize/tds.h"

using namespace pgpub;
using namespace pgpub::bench;

int main() {
  const size_t n = std::min<size_t>(SalRows(), 40000);
  BenchReport report("breach_empirical");
  report.SetParam("sal_n", n);
  report.SetParam("k", 4);
  report.SetParam("p", 0.3);
  report.SetParam("num_victims", 250);
  std::printf("generating %zu census rows...\n", n);
  CensusDataset census = GenerateCensus(n, 42).ValueOrDie();
  const Table& microdata = census.table;
  const int sens = CensusColumns::kIncome;
  const std::vector<int> qi = microdata.schema().QiIndices();

  // (a) Conventional (0.5,3)-diverse 4-anonymous generalization.
  CLDiversity diversity(0.5, 3);
  TdsOptions tds_options;
  tds_options.k = 4;
  tds_options.constraint = &diversity;
  tds_options.constraint_attr = sens;
  TopDownSpecializer tds(microdata, qi, census.TaxonomyPointers(),
                         microdata.column(sens),
                         microdata.domain(sens).size(), tds_options);
  GlobalRecoding recoding = tds.Run().ValueOrDie();
  QiGroups groups = ComputeQiGroups(microdata, recoding);
  std::printf("conventional release: %zu groups, min size %zu, %s held\n",
              groups.num_groups(), groups.MinGroupSize(),
              diversity.name().c_str());

  // (b) PG with the same k and the paper's p = 0.3.
  PgOptions options;
  options.k = 4;
  options.p = 0.3;
  options.seed = 7;
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(microdata, census.TaxonomyPointers()).ValueOrDie();
  std::printf("PG release: %zu tuples, p = %.2f\n\n", published.num_rows(),
              published.retention_p());

  Rng rng(11);
  ExternalDatabase edb =
      ExternalDatabase::FromMicrodata(microdata, n / 20, rng);

  // Both releases are attacked through the unified scenario runner: the
  // same dataset view and adversary, with only the release adapter swapped.
  ScenarioDataset dataset;
  dataset.name = "census";
  dataset.microdata = &microdata;
  dataset.sensitive_attr = sens;
  dataset.edb = &edb;
  FixedGeneralizationRelease gen_release(&groups);
  FixedPgRelease pg_release(&published);
  CorruptionLinkingAdversary adversary;

  std::printf("%-10s | %-30s | %-36s\n", "",
              "conventional generalization", "perturbed generalization");
  std::printf("%-10s | %-9s %-9s %-9s | %-9s %-9s %-9s %-6s\n",
              "corruption", "max-grow", "mean-grow", "certain", "max-grow",
              "Thm3-bnd", "max-h", "breach");
  for (double rate : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    ScenarioOptions scenario;
    scenario.harness.num_victims = 250;
    scenario.harness.corruption_rate = rate;
    scenario.harness.lambda = 0.1;
    scenario.harness.rho1 = 0.2;
    scenario.harness.prior_kind = BreachHarnessOptions::PriorKind::kSkewTrue;
    scenario.harness.seed = 900 + static_cast<uint64_t>(rate * 100);

    BreachStats gen =
        BreachScenario::Run(gen_release, adversary, dataset, scenario)
            .ValueOrDie();
    BreachStats pg =
        BreachScenario::Run(pg_release, adversary, dataset, scenario)
            .ValueOrDie();

    std::printf("%-10.2f | %-9.4f %-9.4f %-9zu | %-9.4f %-9.4f %-9.4f %-6zu\n",
                rate, gen.max_growth, gen.mean_growth,
                gen.point_mass_disclosures, pg.max_growth, pg.delta_bound,
                pg.max_h, pg.delta_breaches + pg.rho_breaches);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("corruption_rate", rate);
    row.Set("gen_max_growth", gen.max_growth);
    row.Set("gen_mean_growth", gen.mean_growth);
    row.Set("gen_certain_disclosures", gen.point_mass_disclosures);
    row.Set("pg_max_growth", pg.max_growth);
    row.Set("pg_delta_bound", pg.delta_bound);
    row.Set("pg_max_h", pg.max_h);
    row.Set("pg_breaches", pg.delta_breaches + pg.rho_breaches);
    report.AddResult(std::move(row));
  }
  std::printf(
      "\n'certain' = attacks ending with a single possible sensitive value\n"
      "(Lemma 2's certain disclosure). PG's breach count must be 0 at every\n"
      "corruption rate (Theorems 1-3).\n");
  return report.WriteAndLog() ? 0 : 1;
}
