#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/pg_publisher.h"
#include "datagen/census.h"
#include "mining/evaluate.h"
#include "sample/stratified.h"

namespace pgpub {
namespace bench {

/// Dataset size for the utility experiments. The paper uses the 700k-row
/// SAL table; 400k keeps the published sample's effective size large
/// enough for stable reconstruction while a full sweep stays around a
/// minute. Override with SAL_N=700000 to run at paper scale.
inline size_t SalRows() {
  const char* env = std::getenv("SAL_N");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 400000;
}

/// Seeds averaged per configuration (reduces sampling jitter in the
/// plotted series). Override with SAL_RUNS.
inline int SalRuns() {
  const char* env = std::getenv("SAL_RUNS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 5;
}

struct UtilityPoint {
  double pg_error = 0.0;
  double optimistic_error = 0.0;
  double pessimistic_error = 0.0;
};

/// Runs the Section VII utility experiment once: PG at (p, k) mined with
/// the reconstruction tree, plus the two yardsticks on a |D|/k uniform
/// subset.
inline UtilityPoint RunUtilityPoint(const CensusDataset& census, double p,
                                    int k, int m, uint64_t seed) {
  const Table& microdata = census.table;
  const int sens = CensusColumns::kIncome;
  const CategoryMap cats = CategoryMap::PaperIncome(m);
  const std::vector<int32_t> truth = cats.Map(microdata.column(sens));
  const std::vector<int> qi = microdata.schema().QiIndices();

  UtilityPoint point;

  // ---- PG.
  PgOptions options;
  options.k = k;
  options.p = p;
  options.seed = seed;
  options.class_category_starts = cats.starts();
  PgPublisher publisher(options);
  PublishedTable published =
      publisher.Publish(microdata, census.TaxonomyPointers()).ValueOrDie();
  Reconstructor reconstructor(p, cats.Weights());
  TreeOptions pg_tree_options;
  pg_tree_options.reconstructor = &reconstructor;
  // Scale the observed-row floors with the reconstruction noise (variance
  // grows as 1/p^2).
  pg_tree_options.min_leaf_rows =
      std::max<size_t>(20, static_cast<size_t>(1.2 / (p * p)));
  pg_tree_options.min_split_rows = 2 * pg_tree_options.min_leaf_rows;
  pg_tree_options.significance_chi2 = 10.0;
  DecisionTree pg_tree =
      DecisionTree::Train(
          TreeDataset::FromPublished(published, cats, census.nominal),
          pg_tree_options)
          .ValueOrDie();
  point.pg_error = EvaluateTree(pg_tree, microdata, qi, truth).error();

  // ---- Yardsticks on a clean / fully randomized |D|/k subset.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<size_t> subset =
      UniformRowSample(microdata.num_rows(), microdata.num_rows() / k, rng);
  Table sub = microdata.SelectRows(subset);
  TreeOptions plain;
  DecisionTree optimistic =
      DecisionTree::Train(
          TreeDataset::FromRaw(sub, qi, cats.Map(sub.column(sens)),
                               cats.num_categories(), census.nominal),
          plain)
          .ValueOrDie();
  point.optimistic_error =
      EvaluateTree(optimistic, microdata, qi, truth).error();

  UniformPerturbation destroy(0.0, microdata.domain(sens).size());
  std::vector<int32_t> randomized =
      destroy.PerturbColumn(sub.column(sens), rng);
  DecisionTree pessimistic =
      DecisionTree::Train(
          TreeDataset::FromRaw(sub, qi, cats.Map(randomized),
                               cats.num_categories(), census.nominal),
          plain)
          .ValueOrDie();
  point.pessimistic_error =
      EvaluateTree(pessimistic, microdata, qi, truth).error();
  return point;
}

/// Runs RunUtilityPoint over SalRuns() seeds and reports the per-series
/// median — robust to the occasional reconstruction-noise outlier, which
/// is also how one would plot a representative single run.
inline UtilityPoint AveragedUtilityPoint(const CensusDataset& census,
                                         double p, int k, int m) {
  const int runs = SalRuns();
  std::vector<double> pg, opt, pes;
  for (int r = 0; r < runs; ++r) {
    UtilityPoint point =
        RunUtilityPoint(census, p, k, m, 0xbe9c5 + 31 * r + k + 1000 * m);
    pg.push_back(point.pg_error);
    opt.push_back(point.optimistic_error);
    pes.push_back(point.pessimistic_error);
  }
  auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  return UtilityPoint{median(pg), median(opt), median(pes)};
}

}  // namespace bench
}  // namespace pgpub
