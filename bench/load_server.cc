/// \file load_server.cc
/// pgpubd serving-core load benchmark (DESIGN.md §12): drives a large
/// request stream (default 1M) across three tenants into a deliberately
/// small ServerCore queue, so the run exercises the overload path —
/// admission control, per-tenant quotas, deadline sweeps — not just the
/// happy path. Emits BENCH_server_load.json (schema_version 1) with
/// offered/admitted/completed counts, the rejection rate, and exact
/// p50/p99 serving latency over the completed responses.
///
/// A fixed-seed determinism guard rides along: the first 64 completed
/// responses are replayed against a freshly built registry and server
/// (same batch_seed, same stream ids) and their digests must match
/// bit-for-bit — overload may change *whether* a request is served,
/// never *what* is published. The bench exits non-zero when the guard
/// fails, so CI treats a determinism regression like a build break.
///
/// Env knobs: PGPUB_LOAD_TOTAL (requests, default 1000000),
/// PGPUB_LOAD_QUEUE (queue capacity, default 256), PGPUB_LOAD_ROWS
/// (largest tenant's rows, default 2000).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_report.h"
#include "common/sync/mutex.h"
#include "datagen/sal.h"
#include "server/health_endpoint.h"
#include "server/server_core.h"
#include "server/tenant_registry.h"

namespace pgpub {
namespace {

using server::ServerCore;
using server::ServerOptions;
using server::ServerRequest;
using server::ServerResponse;
using server::TenantOptions;
using server::TenantRegistry;

size_t EnvSize(const char* name, size_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

constexpr const char* kTenants[] = {"census", "clinic", "hospital"};
constexpr uint64_t kBatchSeed = 0x10ad;

/// Three distinct datasets behind the three tenant keys. `hospital`
/// carries a per-tenant quota so the quota rejection path is exercised
/// alongside the global queue bound.
Result<std::unique_ptr<TenantRegistry>> BuildRegistry(size_t base_rows,
                                                      size_t queue_capacity) {
  auto registry = std::make_unique<TenantRegistry>(nullptr);
  const size_t rows[] = {base_rows, base_rows * 3 / 4, base_rows / 2};
  const uint64_t seeds[] = {11, 22, 33};
  for (int i = 0; i < 3; ++i) {
    SalOptions sal_options;
    sal_options.num_rows = rows[i];
    sal_options.seed = seeds[i];
    ASSIGN_OR_RETURN(CensusDataset dataset, GenerateSal(sal_options));
    TenantOptions options;
    if (i == 2) options.max_queued = std::max<size_t>(1, queue_capacity / 4);
    RETURN_IF_ERROR(registry->AddTenant(kTenants[i],
                                        std::move(dataset.table),
                                        std::move(dataset.taxonomies),
                                        std::move(options)));
  }
  return registry;
}

/// The request for stream id `i` — a pure function of i, so the replay
/// run reproduces the main run's publications exactly. Deadlines are the
/// one non-deterministic ingredient (they race the wall clock) and are
/// only attached in the overload run, never in the replay.
ServerRequest MakeRequest(uint64_t i) {
  ServerRequest request;
  request.tenant = kTenants[i % 3];
  request.stream_id = i;
  request.publish.options.k = (i & 1) != 0 ? 2 : 4;
  request.publish.options.p = ((i >> 1) & 1) != 0 ? 0.4 : 0.7;
  return request;
}

double PercentileMs(std::vector<double>* sorted_into, double q) {
  if (sorted_into->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_into->size() - 1) + 0.5);
  std::nth_element(sorted_into->begin(), sorted_into->begin() + idx,
                   sorted_into->end());
  return (*sorted_into)[idx];
}

int Main() {
  const size_t total = EnvSize("PGPUB_LOAD_TOTAL", 1000000);
  const size_t queue_capacity = EnvSize("PGPUB_LOAD_QUEUE", 256);
  const size_t base_rows = EnvSize("PGPUB_LOAD_ROWS", 2000);

  bench::BenchReport report("server_load");
  report.SetParam("total", static_cast<uint64_t>(total));
  report.SetParam("queue_capacity", static_cast<uint64_t>(queue_capacity));
  report.SetParam("base_rows", static_cast<uint64_t>(base_rows));
  report.SetParam("tenants", static_cast<uint64_t>(3));
  report.SetParam("batch_seed", kBatchSeed);

  std::unique_ptr<TenantRegistry> registry =
      BuildRegistry(base_rows, queue_capacity).ValueOrDie();
  ServerOptions server_options;
  server_options.queue_capacity = queue_capacity;
  server_options.batch_seed = kBatchSeed;
  ServerCore core(registry.get(), server_options);
  if (Status st = core.Start(); !st.ok()) {
    std::fprintf(stderr, "load_server: %s\n", st.ToString().c_str());
    return 1;
  }

  // ---- Overload run: submit as fast as the admission path allows.
  Mutex mu("bench.load_aggregate");
  std::vector<double> latencies_ms;
  std::vector<std::pair<uint64_t, uint64_t>> witness;  // (stream, digest)
  constexpr size_t kWitnessSize = 64;
  uint64_t digest_xor = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  auto on_response = [&](ServerResponse r) {
    MutexLock lock(&mu);
    if (r.status.ok()) {
      ++completed;
      digest_xor ^= r.digest;
      latencies_ms.push_back(r.queue_ms + r.publish_ms);
      if (witness.size() < kWitnessSize) {
        witness.emplace_back(r.stream_id, r.digest);
      }
    } else {
      ++failed;
    }
  };

  uint64_t admitted = 0;
  uint64_t rejected = 0;
  for (uint64_t i = 0; i < total; ++i) {
    ServerRequest request = MakeRequest(i);
    if (i % 16 == 15) {
      // A sliver of tight deadlines keeps the sweep path hot: ~2ms is
      // enough to usually survive admission but often expire in-queue
      // behind a publish.
      request.deadline_nanos =
          core.clock()->NowNanos() + 2 * server::kNanosPerMilli;
    }
    const Status status = core.Submit(std::move(request), on_response);
    if (status.ok()) {
      ++admitted;
    } else {
      ++rejected;
    }
  }
  core.Shutdown();  // Drains: every admitted request is answered.

  const ServerCore::Stats stats = core.stats();
  const double rejection_rate =
      total > 0 ? static_cast<double>(rejected) / static_cast<double>(total)
                : 0.0;
  const double p50_ms = PercentileMs(&latencies_ms, 0.50);
  const double p99_ms = PercentileMs(&latencies_ms, 0.99);

  // ---- Determinism guard: replay the witness against a fresh world.
  bool determinism_ok = true;
  {
    std::unique_ptr<TenantRegistry> replay_registry =
        BuildRegistry(base_rows, queue_capacity).ValueOrDie();
    ServerOptions replay_options;
    replay_options.queue_capacity =
        std::max<size_t>(kWitnessSize, queue_capacity);
    replay_options.batch_seed = kBatchSeed;
    ServerCore replay(replay_registry.get(), replay_options);
    if (Status st = replay.Start(); !st.ok()) {
      std::fprintf(stderr, "load_server: replay: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    // One request in flight at a time: the replay must never trip its
    // own admission control (quota/full rejections would masquerade as
    // divergence). Serializing costs nothing at witness size.
    std::map<uint64_t, uint64_t> replay_digests;
    Mutex replay_mu("bench.load_replay");
    CondVar replay_cv;
    for (const auto& [stream_id, digest] : witness) {
      (void)digest;
      bool done = false;
      const Status st =
          replay.Submit(MakeRequest(stream_id), [&](ServerResponse r) {
            MutexLock lock(&replay_mu);
            if (r.status.ok()) replay_digests[r.stream_id] = r.digest;
            done = true;
            replay_cv.NotifyAll();
          });
      if (!st.ok()) {
        std::fprintf(stderr, "load_server: replay submit: %s\n",
                     st.ToString().c_str());
        determinism_ok = false;
        continue;
      }
      MutexLock lock(&replay_mu);
      while (!done) replay_cv.Wait(&replay_mu);
    }
    replay.Shutdown();
    for (const auto& [stream_id, digest] : witness) {
      auto it = replay_digests.find(stream_id);
      if (it == replay_digests.end() || it->second != digest) {
        std::fprintf(stderr,
                     "load_server: stream %llu digest diverged on replay "
                     "(overload changed *what* was published)\n",
                     static_cast<unsigned long long>(stream_id));
        determinism_ok = false;
      }
    }
  }

  obs::JsonValue row = obs::JsonValue::Object();
  row.Set("offered", static_cast<uint64_t>(total));
  row.Set("admitted", admitted);
  row.Set("completed", completed);
  row.Set("failed", failed);
  row.Set("rejected", rejected);
  row.Set("rejected_full", stats.rejected_full);
  row.Set("rejected_quota", stats.rejected_quota);
  row.Set("rejected_deadline", stats.rejected_deadline);
  row.Set("rejection_rate", rejection_rate);
  row.Set("p50_ms", p50_ms);
  row.Set("p99_ms", p99_ms);
  row.Set("digest_xor", digest_xor);
  row.Set("witness_size", static_cast<uint64_t>(witness.size()));
  row.Set("determinism_ok", determinism_ok);
  report.AddResult(std::move(row));

  std::fprintf(stderr,
               "load_server: offered=%llu admitted=%llu completed=%llu "
               "rejection_rate=%.4f p50=%.3fms p99=%.3fms determinism=%s\n",
               static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(admitted),
               static_cast<unsigned long long>(completed), rejection_rate,
               p50_ms, p99_ms, determinism_ok ? "ok" : "FAILED");

  if (!report.WriteAndLog()) return 1;
  return determinism_ok ? 0 : 1;
}

}  // namespace
}  // namespace pgpub

int main(int argc, char** argv) {
  const std::string trace = pgpub::bench::TraceFromArgs(argc, argv);
  const int rc = pgpub::Main();
  return pgpub::bench::FinishTrace(trace) ? rc : 1;
}
