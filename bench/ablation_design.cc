/// \file ablation_design.cc
/// Ablations over the reproduction's own design choices (DESIGN.md §5):
///
///   A. Phase-2 specialization scoring — balance-aware (default) vs the
///      classic InfoGain/(AnonyLoss+1) greedy: effect on the number of
///      strata, the max G, the Kish effective sample size of the release,
///      and the downstream mining error.
///   B. Mining hardening — per-node randomized-response reconstruction,
///      the chi-square split gate and ESS-based evidence floors, each
///      toggled off: effect on the classification error of the PG tree.
///
/// Environment: SAL_N (default 400000), SAL_RUNS.

#include <algorithm>
#include <cstdio>

#include "bench/bench_report.h"
#include "bench/bench_util.h"
#include "generalize/tds.h"

using namespace pgpub;
using namespace pgpub::bench;

namespace {

struct StrataStats {
  size_t groups = 0;
  size_t max_g = 0;
  double ess = 0.0;
};

StrataStats StatsOf(const Table& table, const GlobalRecoding& recoding) {
  QiGroups groups = ComputeQiGroups(table, recoding);
  StrataStats stats;
  stats.groups = groups.num_groups();
  double sw = 0.0, sw2 = 0.0;
  for (const auto& g : groups.group_rows) {
    stats.max_g = std::max(stats.max_g, g.size());
    const double s = static_cast<double>(g.size());
    sw += s;
    sw2 += s * s;
  }
  stats.ess = sw2 > 0 ? sw * sw / sw2 : 0.0;
  return stats;
}

double MineError(const CensusDataset& census,
                 const PublishedTable& published, const CategoryMap& cats,
                 bool reconstruct, bool chi2_gate, double p) {
  Reconstructor reconstructor(p, cats.Weights());
  TreeOptions options;
  if (reconstruct) options.reconstructor = &reconstructor;
  options.min_leaf_rows =
      std::max<size_t>(20, static_cast<size_t>(1.2 / (p * p)));
  options.min_split_rows = 2 * options.min_leaf_rows;
  options.significance_chi2 = chi2_gate ? 10.0 : 0.0;
  DecisionTree tree =
      DecisionTree::Train(
          TreeDataset::FromPublished(published, cats, census.nominal),
          options)
          .ValueOrDie();
  const std::vector<int> qi = census.table.schema().QiIndices();
  return EvaluateTree(tree, census.table, qi,
                      cats.Map(census.table.column(CensusColumns::kIncome)))
      .error();
}

}  // namespace

int main() {
  const size_t n = SalRows();
  BenchReport report("ablation_design");
  report.SetParam("sal_n", n);
  report.SetParam("sal_runs", SalRuns());
  report.SetParam("k", 6);
  std::printf("generating %zu census rows...\n", n);
  CensusDataset census = GenerateCensus(n, 20080407).ValueOrDie();
  const CategoryMap cats = CategoryMap::PaperIncome(2);
  const std::vector<int> qi = census.table.schema().QiIndices();
  const std::vector<int32_t> labels =
      cats.Map(census.table.column(CensusColumns::kIncome));
  const int k = 6;

  // ---- Ablation A: Phase-2 scoring.
  std::printf("\n=== A. TDS specialization scoring (k = %d) ===\n", k);
  std::printf("%-24s %-8s %-8s %-10s\n", "variant", "groups", "max-G",
              "release-ESS");
  GlobalRecoding balanced, greedy;
  for (bool balance_aware : {true, false}) {
    TdsOptions options;
    options.k = k;
    options.balance_aware = balance_aware;
    TopDownSpecializer tds(census.table, qi, census.TaxonomyPointers(),
                           labels, cats.num_categories(), options);
    GlobalRecoding recoding = tds.Run().ValueOrDie();
    StrataStats stats = StatsOf(census.table, recoding);
    std::printf("%-24s %-8zu %-8zu %-10.1f\n",
                balance_aware ? "balance-aware (default)" : "pure info-gain",
                stats.groups, stats.max_g, stats.ess);
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("ablation", "tds_scoring");
    row.Set("balance_aware", balance_aware);
    row.Set("groups", stats.groups);
    row.Set("max_g", stats.max_g);
    row.Set("release_ess", stats.ess);
    report.AddResult(std::move(row));
    (balance_aware ? balanced : greedy) = std::move(recoding);
  }

  // ---- Ablation B: mining hardening, swept over retention (the gates
  // bind hardest when reconstruction noise is largest, i.e. small p).
  const double floor = MajorityBaselineError(labels, cats.num_categories());
  std::printf("\n=== B. mining hardening (k = %d; majority floor %.4f) "
              "===\n",
              k, floor);
  std::printf("%-6s %-12s %-12s %-12s %-8s\n", "p", "default",
              "no-chi2-gate", "no-recon", "tuples");
  for (double bp : {0.15, 0.30, 0.45}) {
    PgOptions pg_options;
    pg_options.k = k;
    pg_options.p = bp;
    pg_options.seed = 99;
    pg_options.class_category_starts = cats.starts();
    PgPublisher publisher(pg_options);
    PublishedTable published =
        publisher.Publish(census.table, census.TaxonomyPointers())
            .ValueOrDie();
    const double err_default = MineError(census, published, cats, true, true, bp);
    const double err_no_chi2 = MineError(census, published, cats, true, false, bp);
    const double err_no_recon = MineError(census, published, cats, false, true, bp);
    std::printf("%-6.2f %-12.4f %-12.4f %-12.4f %-8zu\n", bp, err_default,
                err_no_chi2, err_no_recon, published.num_rows());
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("ablation", "mining_hardening");
    row.Set("p", bp);
    row.Set("error_default", err_default);
    row.Set("error_no_chi2_gate", err_no_chi2);
    row.Set("error_no_reconstruction", err_no_recon);
    row.Set("tuples", published.num_rows());
    report.AddResult(std::move(row));
  }
  std::printf(
      "\nExpected: the balance-aware recoding multiplies the release ESS.\n"
      "The chi2 gate is the main safeguard against noise-fitting; explicit\n"
      "reconstruction matters most at low p (for m = 2 equal-width\n"
      "categories the observed argmax already orders classes correctly,\n"
      "so 'no-recon' is a surprisingly strong baseline there).\n");
  return report.WriteAndLog() ? 0 : 1;
}
